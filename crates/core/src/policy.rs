//! Background-GC invocation policies.
//!
//! A policy answers one question every write-back interval: *how much free
//! capacity should background GC maintain right now?* The engine then
//! reclaims toward that target during idle time only.
//!
//! * [`NoBgc`] — never reclaim in the background (pure foreground GC).
//! * [`ReservedCapacity`] — keep a fixed reserve `C_resv`; instantiated as
//!   the paper's **L-BGC** (`0.5 × C_OP`), **A-BGC** (`1.5 × C_OP`) and the
//!   Fig. 2 sweep.
//! * [`AdpGc`] — the paper's adaptive baseline: dynamically sizes the
//!   reserve from a device-internal CDH over *all* writes; cannot tell
//!   buffered from direct traffic and has no SIP information.
//! * [`JitGc`] — the paper's contribution: exploits the host-side
//!   buffered-demand scan + direct-write CDH through the
//!   [`JitGcManager`], and ships SIP lists to the FTL.

use crate::manager::JitGcManager;
use crate::predictor::{BufferedDemand, DirectDemand, DirectWritePredictor};
use jitgc_sim::{ByteSize, SimDuration, SimTime};

/// Everything a policy may look at when deciding (one write-back
/// interval's worth of state).
///
/// Device-only policies must ignore the host-side fields; that contract is
/// honored by construction in [`AdpGc`] and [`ReservedCapacity`].
#[derive(Debug, Clone)]
pub struct IntervalObservation<'a> {
    /// Current simulated time (the interval's start).
    pub now: SimTime,
    /// The device's free capacity `C_free`.
    pub free_capacity: ByteSize,
    /// The device's over-provisioning capacity `C_OP`.
    pub op_capacity: ByteSize,
    /// Host-side buffered-demand scan (page-cache predictor output).
    pub buffered_demand: &'a BufferedDemand,
    /// Host-side direct-write CDH prediction.
    pub direct_demand: &'a DirectDemand,
    /// Bytes written to the device during the interval that just ended
    /// (all kinds) — the only traffic signal visible *inside* the SSD.
    pub device_bytes_last_interval: u64,
}

/// A policy's verdict for the coming interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyDecision {
    /// Background GC should reclaim (idle-time only) until `C_free`
    /// reaches this value.
    pub target_free: ByteSize,
    /// The policy's prediction of device write traffic over the coming
    /// `N_wb`-interval horizon in bytes, if it makes one (scored for the
    /// paper's Table 2 — this is the `C_req` the reservation is sized
    /// from, so its error is what translates into mis-reservation).
    pub predicted_next_interval: Option<u64>,
}

/// Strategy for scheduling background garbage collection.
///
/// `Send` so a whole [`SsdSystem`](crate::system::SsdSystem) — policy
/// included — can be stepped on an array worker thread.
pub trait GcPolicy: Send {
    /// Display name ("L-BGC", "A-BGC", "ADP-GC", "JIT-GC", …).
    fn name(&self) -> &'static str;

    /// `true` when the engine should forward SIP lists to the FTL's
    /// victim filter (only JIT-GC in the paper).
    fn uses_sip(&self) -> bool {
        false
    }

    /// The decision at the start of each write-back interval.
    fn on_interval(&mut self, obs: &IntervalObservation<'_>) -> PolicyDecision;

    /// `true` when a zero-traffic [`on_interval`] call maps this policy
    /// exactly onto itself *and* returns the same decision as the last
    /// such call: given an observation with zero demands, zero
    /// `device_bytes_last_interval`, and unchanged capacities, the policy
    /// mutates no internal state and its decision does not depend on
    /// `obs.now`. The engine's quiescence fast-forward may then skip the
    /// call entirely across an idle span. Policies whose state drifts on
    /// idle intervals (EWMAs, incomplete sliding windows) must answer
    /// `false`; the conservative default is `false`, which only costs
    /// performance, never correctness.
    ///
    /// [`on_interval`]: Self::on_interval
    fn zero_traffic_fixed_point(&self) -> bool {
        false
    }

    /// Feedback: an observed host-write transfer (for `B_w` estimation).
    fn observe_write(&mut self, _bytes: ByteSize, _took: SimDuration) {}

    /// Feedback: an observed GC reclamation (for `B_gc` estimation).
    fn observe_gc(&mut self, _bytes: ByteSize, _took: SimDuration) {}
}

// ----------------------------------------------------------------------
// NoBgc
// ----------------------------------------------------------------------

/// Never runs background GC; every reclamation is a foreground stall.
/// The worst-case baseline for ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBgc;

impl GcPolicy for NoBgc {
    fn name(&self) -> &'static str {
        "No-BGC"
    }

    fn on_interval(&mut self, _obs: &IntervalObservation<'_>) -> PolicyDecision {
        PolicyDecision {
            target_free: ByteSize::ZERO,
            predicted_next_interval: None,
        }
    }

    // Stateless and time-free: every interval decision is identical.
    fn zero_traffic_fixed_point(&self) -> bool {
        true
    }
}

// ----------------------------------------------------------------------
// ReservedCapacity (L-BGC / A-BGC / Fig. 2 sweep)
// ----------------------------------------------------------------------

/// Maintains a fixed reserved capacity `C_resv` (paper Sec. 2).
///
/// `C_resv < C_OP` makes the policy *lazy* (rare BGC, long lifetime, FGC
/// stalls); `C_resv > C_OP` makes it *aggressive* (no stalls, premature
/// erasures). The paper pins L-BGC at `0.5 × C_OP` and A-BGC at
/// `1.5 × C_OP`.
///
/// # Example
///
/// ```
/// use jitgc_core::policy::{GcPolicy, ReservedCapacity};
/// use jitgc_sim::ByteSize;
///
/// let op = ByteSize::gib(16);
/// assert_eq!(ReservedCapacity::lazy(op).reserved(), ByteSize::gib(8));
/// assert_eq!(ReservedCapacity::aggressive(op).reserved(), ByteSize::gib(24));
/// assert_eq!(ReservedCapacity::lazy(op).name(), "L-BGC");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ReservedCapacity {
    cresv: ByteSize,
    label: &'static str,
}

impl ReservedCapacity {
    /// A policy holding exactly `cresv` in reserve.
    #[must_use]
    pub fn new(cresv: ByteSize) -> Self {
        ReservedCapacity {
            cresv,
            label: "C-BGC",
        }
    }

    /// The paper's lazy baseline: `C_resv = 0.5 × C_OP`.
    #[must_use]
    pub fn lazy(op_capacity: ByteSize) -> Self {
        ReservedCapacity {
            cresv: op_capacity.scale_permille(500),
            label: "L-BGC",
        }
    }

    /// The paper's aggressive baseline: `C_resv = 1.5 × C_OP`.
    #[must_use]
    pub fn aggressive(op_capacity: ByteSize) -> Self {
        ReservedCapacity {
            cresv: op_capacity.scale_permille(1_500),
            label: "A-BGC",
        }
    }

    /// A sweep point: `C_resv = permille/1000 × C_OP` (Fig. 2 uses 500,
    /// 750, 1000, 1250, 1500).
    #[must_use]
    pub fn of_op_permille(op_capacity: ByteSize, permille: u64) -> Self {
        ReservedCapacity {
            cresv: op_capacity.scale_permille(permille),
            label: match permille {
                500 => "L-BGC",
                1_500 => "A-BGC",
                _ => "C-BGC",
            },
        }
    }

    /// The configured reserve.
    #[must_use]
    pub fn reserved(&self) -> ByteSize {
        self.cresv
    }
}

impl GcPolicy for ReservedCapacity {
    fn name(&self) -> &'static str {
        self.label
    }

    fn on_interval(&mut self, _obs: &IntervalObservation<'_>) -> PolicyDecision {
        PolicyDecision {
            target_free: self.cresv,
            predicted_next_interval: None,
        }
    }

    // Stateless and time-free: the target is a configuration constant.
    fn zero_traffic_fixed_point(&self) -> bool {
        true
    }
}

// ----------------------------------------------------------------------
// IDLE-GC (related-work baseline)
// ----------------------------------------------------------------------

/// An idle-time-exploiting baseline in the spirit of Park et al. (the
/// paper's reference [7], Sec. 5): trigger background GC aggressively only
/// when a long idle period is expected, and stay lazy otherwise, to avoid
/// hurting user-perceived response time.
///
/// Idle periods are predicted from recent device traffic: an EWMA of the
/// per-interval write volume, compared against its own long-term level.
/// When the recent level falls below `idle_fraction` of the long-term
/// level the device is deemed entering an idle phase and the policy
/// reserves aggressively (`1.5 × C_OP`); otherwise it holds only the lazy
/// reserve (`0.5 × C_OP`).
///
/// Unlike [`JitGc`] this predicts *opportunity* (when GC is cheap), not
/// *demand* (how much space is needed) — the distinction the paper draws
/// from its related work.
#[derive(Debug)]
pub struct IdleGc {
    fast: jitgc_sim::stats::Ewma,
    slow: jitgc_sim::stats::Ewma,
    idle_fraction: f64,
}

impl IdleGc {
    /// Creates the policy; `idle_fraction` is the recent-to-long-term
    /// traffic ratio below which an idle phase is assumed (0.5 is a
    /// reasonable default).
    ///
    /// # Panics
    ///
    /// Panics unless `idle_fraction` is in `(0, 1]`.
    #[must_use]
    pub fn new(idle_fraction: f64) -> Self {
        assert!(
            idle_fraction > 0.0 && idle_fraction <= 1.0,
            "idle fraction must be in (0, 1], got {idle_fraction}"
        );
        IdleGc {
            fast: jitgc_sim::stats::Ewma::new(0.5),
            slow: jitgc_sim::stats::Ewma::new(0.05),
            idle_fraction,
        }
    }
}

impl Default for IdleGc {
    fn default() -> Self {
        IdleGc::new(0.5)
    }
}

impl GcPolicy for IdleGc {
    // NOTE: `zero_traffic_fixed_point` stays at the trait default
    // (`false`): both EWMAs move on every interval — zero samples
    // included — so even a long-idle IdleGc is never an exact self-map
    // and cannot be fast-forwarded.

    fn name(&self) -> &'static str {
        "IDLE-GC"
    }

    fn on_interval(&mut self, obs: &IntervalObservation<'_>) -> PolicyDecision {
        let sample = obs.device_bytes_last_interval as f64;
        self.fast.update(sample);
        self.slow.update(sample);
        let long_term = self.slow.value_or(0.0);
        let idle_expected =
            long_term > 0.0 && self.fast.value_or(0.0) < long_term * self.idle_fraction;
        let target = if idle_expected {
            obs.op_capacity.scale_permille(1_500)
        } else {
            obs.op_capacity.scale_permille(500)
        };
        PolicyDecision {
            target_free: target,
            predicted_next_interval: None,
        }
    }
}

// ----------------------------------------------------------------------
// ADP-GC
// ----------------------------------------------------------------------

/// The paper's adaptive baseline (Sec. 4.2): sizes the reserve from a CDH
/// over **all** device write traffic, estimated entirely inside the SSD.
///
/// Differences from [`JitGc`], exactly as the paper states them:
/// the predictor "does not distinguish between direct writes and buffered
/// writes" (it sees only device-level totals, so it misses the page
/// cache's precise flush timing), and it "does not exploit the SIP
/// information".
#[derive(Debug)]
pub struct AdpGc {
    predictor: DirectWritePredictor,
    manager: JitGcManager,
}

impl AdpGc {
    /// Creates the policy.
    ///
    /// * `p` / `tau_expire` — write-back interval and horizon.
    /// * `percentile` — CDH coverage (0.8 like JIT-GC's direct predictor).
    /// * `bin_bytes` — CDH bin width.
    /// * `default_write_bw` / `default_gc_bw` — initial bandwidth
    ///   estimates in bytes/second.
    #[must_use]
    pub fn new(
        p: SimDuration,
        tau_expire: SimDuration,
        percentile: f64,
        bin_bytes: u64,
        default_write_bw: f64,
        default_gc_bw: f64,
    ) -> Self {
        AdpGc {
            predictor: DirectWritePredictor::new(p, tau_expire, percentile, bin_bytes),
            manager: JitGcManager::new(tau_expire, default_write_bw, default_gc_bw),
        }
    }
}

impl GcPolicy for AdpGc {
    fn name(&self) -> &'static str {
        "ADP-GC"
    }

    fn on_interval(&mut self, obs: &IntervalObservation<'_>) -> PolicyDecision {
        // Device-only view: feed the total traffic of the closed interval.
        self.predictor
            .observe_interval(obs.device_bytes_last_interval);
        let demand = self.predictor.predict();
        let decision = self
            .manager
            .decide(&[], &demand.to_vec(), obs.free_capacity);
        // The dynamically sized reserve is the CDH's δ over the whole
        // horizon — ADP-GC cannot tell when within the horizon the traffic
        // lands, so it must keep all of it free. The reserve is capped at
        // the aggressive end of the paper's design space (1.5 × C_OP):
        // beyond that, BGC erases blocks for marginal gain — the "useless
        // BGC operations" the paper's C_resv restriction exists to avoid.
        let cap = obs.op_capacity.scale_permille(1_500);
        let reserve = ByteSize::bytes(demand.total()).min(cap);
        PolicyDecision {
            target_free: reserve.max(obs.free_capacity + decision.reclaim).min(cap),
            predicted_next_interval: Some(demand.total()),
        }
    }

    // ADP-GC's only interval-to-interval state is its internal traffic
    // predictor (the manager mutates solely via observe_write/observe_gc
    // and decides time-free): once the predictor's windows are saturated
    // with zeros, a zero-traffic interval is an exact self-map.
    fn zero_traffic_fixed_point(&self) -> bool {
        self.predictor.at_zero_traffic_fixed_point()
    }

    fn observe_write(&mut self, bytes: ByteSize, took: SimDuration) {
        self.manager.observe_write(bytes, took);
    }

    fn observe_gc(&mut self, bytes: ByteSize, took: SimDuration) {
        self.manager.observe_gc(bytes, took);
    }
}

// ----------------------------------------------------------------------
// JIT-GC
// ----------------------------------------------------------------------

/// The paper's contribution: just-in-time BGC from host-side predictions.
///
/// Exploits the [`BufferedDemand`] scan (exact flush timing from the page
/// cache) and the [`DirectDemand`] CDH, reclaims only what the
/// [`JitGcManager`] says is needed *now*, and ships SIP lists so the FTL
/// avoids migrating pages that are about to die.
#[derive(Debug)]
pub struct JitGc {
    manager: JitGcManager,
    sip_filtering: bool,
}

impl JitGc {
    /// Creates the policy with initial bandwidth estimates in
    /// bytes/second.
    #[must_use]
    pub fn new(tau_expire: SimDuration, default_write_bw: f64, default_gc_bw: f64) -> Self {
        JitGc {
            manager: JitGcManager::new(tau_expire, default_write_bw, default_gc_bw),
            sip_filtering: true,
        }
    }

    /// Creates the policy from a system configuration, deriving bandwidth
    /// defaults from its NAND timing model.
    #[must_use]
    pub fn from_system_config(config: &crate::system::SystemConfig) -> Self {
        let (bw, gc) = config.default_bandwidths();
        JitGc::new(config.tau_expire(), bw, gc)
    }

    /// Disables SIP victim filtering (ablation variant).
    #[must_use]
    pub fn without_sip_filtering(mut self) -> Self {
        self.sip_filtering = false;
        self
    }

    /// Read-only access to the manager (for inspection in tests/benches).
    #[must_use]
    pub fn manager(&self) -> &JitGcManager {
        &self.manager
    }
}

impl GcPolicy for JitGc {
    fn name(&self) -> &'static str {
        "JIT-GC"
    }

    fn uses_sip(&self) -> bool {
        self.sip_filtering
    }

    fn on_interval(&mut self, obs: &IntervalObservation<'_>) -> PolicyDecision {
        let decision = self.manager.decide(
            obs.buffered_demand.as_slice(),
            &obs.direct_demand.to_vec(),
            obs.free_capacity,
        );
        // Two floors beneath the manager's lazy schedule:
        // * δ_dir in full — the paper's *dedicated over-provisioning space
        //   for direct writes* (Sec. 3.2.2): direct traffic can land at any
        //   moment within the horizon, so its whole reservation must be
        //   free now.
        // * D¹_buf + D²_buf — the flushes of the next two wake-ups. BGC is
        //   commanded at tick granularity, so a reservation needs one full
        //   interval of lead time to be certain to complete before the
        //   flush it covers.
        let floor = ByteSize::bytes(
            obs.buffered_demand.interval(1)
                + obs
                    .buffered_demand
                    .interval(2.min(obs.buffered_demand.horizon()))
                + obs.direct_demand.total(),
        );
        // Like ADP-GC, the reserve is capped at the aggressive end of the
        // paper's design space (1.5 × C_OP).
        let cap = obs.op_capacity.scale_permille(1_500);
        PolicyDecision {
            target_free: floor.max(obs.free_capacity + decision.reclaim).min(cap),
            predicted_next_interval: Some(obs.buffered_demand.total() + obs.direct_demand.total()),
        }
    }

    // `on_interval` never mutates JIT-GC: the manager decides through
    // `&self` from demands and capacities alone (no `obs.now` term), and
    // its bandwidth estimates move only via observe_write/observe_gc —
    // which an idle span by definition does not call.
    fn zero_traffic_fixed_point(&self) -> bool {
        true
    }

    fn observe_write(&mut self, bytes: ByteSize, took: SimDuration) {
        self.manager.observe_write(bytes, took);
    }

    fn observe_gc(&mut self, bytes: ByteSize, took: SimDuration) {
        self.manager.observe_gc(bytes, took);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1_000_000;

    fn obs<'a>(
        free_mb: u64,
        buffered: &'a BufferedDemand,
        direct: &'a DirectDemand,
        device_last: u64,
    ) -> IntervalObservation<'a> {
        IntervalObservation {
            now: SimTime::from_secs(100),
            free_capacity: ByteSize::bytes(free_mb * MB),
            op_capacity: ByteSize::bytes(100 * MB),
            buffered_demand: buffered,
            direct_demand: direct,
            device_bytes_last_interval: device_last,
        }
    }

    fn zero_direct() -> DirectDemand {
        DirectWritePredictor::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(30),
            0.8,
            MB,
        )
        .predict()
    }

    #[test]
    fn no_bgc_targets_zero() {
        let b = BufferedDemand::zero(6);
        let d = zero_direct();
        let mut p = NoBgc;
        let decision = p.on_interval(&obs(10, &b, &d, 0));
        assert_eq!(decision.target_free, ByteSize::ZERO);
        assert_eq!(decision.predicted_next_interval, None);
        assert!(!p.uses_sip());
    }

    #[test]
    fn reserved_capacity_targets_cresv() {
        let b = BufferedDemand::zero(6);
        let d = zero_direct();
        let op = ByteSize::bytes(100 * MB);
        let mut lazy = ReservedCapacity::lazy(op);
        let mut aggressive = ReservedCapacity::aggressive(op);
        let lazy_t = lazy.on_interval(&obs(10, &b, &d, 0)).target_free;
        let agg_t = aggressive.on_interval(&obs(10, &b, &d, 0)).target_free;
        assert_eq!(lazy_t, ByteSize::bytes(50 * MB));
        assert_eq!(agg_t, ByteSize::bytes(150 * MB));
        assert!(lazy_t < agg_t);
        assert_eq!(lazy.name(), "L-BGC");
        assert_eq!(aggressive.name(), "A-BGC");
        assert_eq!(
            ReservedCapacity::of_op_permille(op, 750).reserved(),
            ByteSize::bytes(75 * MB)
        );
        assert_eq!(ReservedCapacity::of_op_permille(op, 750).name(), "C-BGC");
    }

    #[test]
    fn jit_targets_free_plus_reclaim_and_predicts() {
        let mut buffered = BufferedDemand::zero(6);
        // Hand-craft a demand via the predictor API instead: reuse zero and
        // check the predicted_next_interval plumbing with direct demand.
        let mut direct_pred = DirectWritePredictor::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(30),
            0.8,
            MB,
        );
        direct_pred.observe_window_total(60 * MB);
        let direct = direct_pred.predict();
        // GC bandwidth of 2 MB/s: T_gc for the 59 MB shortfall (29.5 s)
        // exceeds T_idle (28.5 s), so the manager must reclaim now.
        let mut jit = JitGc::new(SimDuration::from_secs(30), 40e6, 2e6);
        let decision = jit.on_interval(&obs(1, &buffered, &direct, 0));
        assert!(jit.uses_sip());
        assert_eq!(
            decision.predicted_next_interval,
            Some(direct.total()),
            "prediction = Σ D_buf + Σ D_dir over the horizon"
        );
        // Demand 60 MB vs 1 MB free: some reclaim is required.
        assert!(decision.target_free > ByteSize::bytes(MB));
        // With ample free space the target is clamped at the aggressive
        // cap (1.5 × C_OP = 150 MB) — below the current free level, which
        // makes the background collector a no-op.
        let decision2 = jit.on_interval(&obs(1_000, &buffered, &direct, 0));
        assert_eq!(decision2.target_free, ByteSize::bytes(150 * MB));
        buffered = BufferedDemand::zero(6);
        let _ = &buffered;
    }

    #[test]
    fn jit_without_sip_is_ablatable() {
        let jit = JitGc::new(SimDuration::from_secs(30), 40e6, 10e6).without_sip_filtering();
        assert!(!jit.uses_sip());
        assert_eq!(jit.name(), "JIT-GC");
    }

    #[test]
    fn adp_adapts_target_to_observed_traffic() {
        let b = BufferedDemand::zero(6);
        let d = zero_direct();
        let mut adp = AdpGc::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(30),
            0.8,
            MB,
            40e6,
            10e6,
        );
        assert_eq!(adp.name(), "ADP-GC");
        assert!(!adp.uses_sip());
        // Quiet phase: after warm-up the target stays at free (no demand).
        let mut last = PolicyDecision {
            target_free: ByteSize::ZERO,
            predicted_next_interval: None,
        };
        for _ in 0..12 {
            last = adp.on_interval(&obs(1, &b, &d, 0));
        }
        assert_eq!(last.target_free, ByteSize::bytes(MB));
        // Heavy phase: sustained 50 MB intervals push the target up.
        for _ in 0..12 {
            last = adp.on_interval(&obs(1, &b, &d, 50 * MB));
        }
        assert!(
            last.target_free > ByteSize::bytes(10 * MB),
            "target {:?}",
            last.target_free
        );
        assert!(last.predicted_next_interval.expect("ADP predicts") > 0);
    }

    #[test]
    fn idle_gc_switches_reserve_with_traffic_phase() {
        let b = BufferedDemand::zero(6);
        let d = zero_direct();
        let mut p = IdleGc::default();
        assert_eq!(p.name(), "IDLE-GC");
        assert!(!p.uses_sip());
        // Sustained traffic: lazy reserve.
        let mut last = p.on_interval(&obs(10, &b, &d, 50 * MB));
        for _ in 0..20 {
            last = p.on_interval(&obs(10, &b, &d, 50 * MB));
        }
        assert_eq!(last.target_free, ByteSize::bytes(50 * MB)); // 0.5 × op(100)
                                                                // Traffic collapses: idle phase expected → aggressive reserve.
        for _ in 0..5 {
            last = p.on_interval(&obs(10, &b, &d, 0));
        }
        assert_eq!(last.target_free, ByteSize::bytes(150 * MB)); // 1.5 × op
        assert_eq!(last.predicted_next_interval, None);
    }

    #[test]
    #[should_panic(expected = "idle fraction must be in (0, 1]")]
    fn idle_gc_rejects_bad_fraction() {
        let _ = IdleGc::new(0.0);
    }

    #[test]
    fn zero_traffic_fixed_points_match_policy_statefulness() {
        let op = ByteSize::bytes(100 * MB);
        assert!(NoBgc.zero_traffic_fixed_point());
        assert!(ReservedCapacity::lazy(op).zero_traffic_fixed_point());
        assert!(JitGc::new(SimDuration::from_secs(30), 40e6, 10e6).zero_traffic_fixed_point());
        assert!(
            !IdleGc::default().zero_traffic_fixed_point(),
            "IdleGc EWMAs drift on idle intervals"
        );
    }

    #[test]
    fn adp_fixed_point_tracks_its_predictor_saturation() {
        let b = BufferedDemand::zero(6);
        let d = zero_direct();
        let mut adp = AdpGc::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(30),
            0.8,
            MB,
            40e6,
            10e6,
        );
        assert!(!adp.zero_traffic_fixed_point(), "windows not yet saturated");
        // nwb = 6 intervals fill the ring, then 64 more saturate the CDH.
        for _ in 0..(6 + 64) {
            adp.on_interval(&obs(10, &b, &d, 0));
        }
        assert!(adp.zero_traffic_fixed_point());
        // At the fixed point a zero-traffic interval repeats its decision.
        let a = adp.on_interval(&obs(10, &b, &d, 0));
        let bb = adp.on_interval(&obs(10, &b, &d, 0));
        assert_eq!(a, bb);
        assert!(adp.zero_traffic_fixed_point());
        // Traffic leaves the fixed point.
        adp.on_interval(&obs(10, &b, &d, 5 * MB));
        assert!(!adp.zero_traffic_fixed_point());
    }

    #[test]
    fn bandwidth_feedback_reaches_managers() {
        let mut jit = JitGc::new(SimDuration::from_secs(30), 40e6, 10e6);
        jit.observe_write(ByteSize::bytes(10 * MB), SimDuration::from_millis(50));
        assert!(jit.manager().write_bandwidth() > 40e6);
        jit.observe_gc(ByteSize::bytes(10 * MB), SimDuration::from_millis(50));
        assert!(jit.manager().gc_bandwidth() > 10e6);
    }
}
