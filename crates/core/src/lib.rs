//! JIT-GC: just-in-time garbage collection for SSDs (DAC 2015).
//!
//! This crate is the paper's contribution, built on the substrate crates:
//!
//! * [`predictor`] — the **future write demand predictor** (paper Sec. 3.2):
//!   [`predictor::BufferedWritePredictor`] scans the page cache and bounds
//!   the flush traffic of each future write-back interval (also producing
//!   the SIP list); [`predictor::DirectWritePredictor`] maintains the CDH
//!   of past direct-write windows and reserves a percentile of it;
//!   [`predictor::AccuracyTracker`] scores predictions against reality
//!   (paper Table 2).
//! * [`manager`] — the **JIT-GC manager** (paper Sec. 3.3): given demands
//!   and the device's free capacity, decides whether background GC must
//!   run *now* and how much to reclaim (`T_idle` vs `T_gc`).
//! * [`policy`] — pluggable BGC invocation policies: the paper's baselines
//!   [`policy::ReservedCapacity`] (L-BGC, A-BGC, and the Fig. 2 sweep),
//!   the cache-oblivious [`policy::AdpGc`], the full [`policy::JitGc`],
//!   and [`policy::NoBgc`].
//! * [`system`] — the full-system simulation engine: workload → page cache
//!   → FTL → NAND with idle-time BGC, producing a [`system::SimReport`]
//!   with IOPS, WAF, latency percentiles, prediction accuracy and SIP
//!   statistics.
//!
//! # Example
//!
//! ```
//! use jitgc_core::policy::JitGc;
//! use jitgc_core::system::{SsdSystem, SystemConfig};
//! use jitgc_workload::{BenchmarkKind, WorkloadConfig};
//! use jitgc_sim::SimDuration;
//!
//! let system_config = SystemConfig::small_for_tests();
//! let workload_config = WorkloadConfig::builder()
//!     .working_set_pages(system_config.ftl.user_pages() / 2)
//!     .duration(SimDuration::from_secs(30))
//!     .build();
//! let workload = BenchmarkKind::Ycsb.build(workload_config);
//! let policy = JitGc::from_system_config(&system_config);
//!
//! let mut system = SsdSystem::new(system_config, Box::new(policy), workload);
//! let report = system.run();
//! assert!(report.iops > 0.0);
//! assert!(report.waf.expect("host writes happened") >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manager;
pub mod policy;
pub mod predictor;
pub mod system;
