//! The simulation engine proper.

use super::interval_log::IntervalLog;
use crate::policy::{GcPolicy, IntervalObservation};
use crate::predictor::{AccuracyTracker, BufferedWritePredictor, DirectWritePredictor};
use crate::system::{PhaseProfile, SimReport, SystemConfig};
use jitgc_ftl::{DegradeKind, Ftl, FtlError, SipList};
use jitgc_nand::Lpn;
use jitgc_pagecache::PageCache;
use jitgc_sim::stats::LatencyRecorder;
use jitgc_sim::{ByteSize, SimDuration, SimTime};
use jitgc_workload::{IoKind, IoRequest, Workload};

/// A snapshot of one system's JIT-GC-relevant state, taken between
/// requests.
///
/// This is the per-device telemetry an array-level manager needs to
/// reason about *when* each member should reclaim relative to its peers
/// (see the `jitgc-array` crate): the live free capacity `C_free`, the
/// most recent predicted demands `D_buf`/`D_dir`, the policy's current
/// reserve target, and how long the device will stay busy with already
/// accepted work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcSignals {
    /// `C_free`: free capacity currently available to the host.
    pub free_capacity: ByteSize,
    /// Upper bound on what background GC could still reclaim.
    pub reclaimable_capacity: ByteSize,
    /// The policy's current reserve target (what BGC works toward).
    pub target_free: ByteSize,
    /// Total buffered-write demand `Σ D_buf` predicted at the last poll.
    pub predicted_buffered_bytes: u64,
    /// Total direct-write demand `Σ D_dir` predicted at the last poll.
    pub predicted_direct_bytes: u64,
    /// When the device finishes its currently accepted work.
    pub busy_until: SimTime,
    /// Cumulative foreground-GC invocations (a rising count flags a
    /// device that ran out of reserve).
    pub fgc_invocations: u64,
}

impl GcSignals {
    /// How far background GC is behind its reserve target, as a fraction
    /// in `[0, 1]`: `(target_free − free) / target_free`, clamped. Zero
    /// when the reserve is met (or the policy asks for none); 1 when the
    /// device has no free capacity at all against a non-zero target. A
    /// service frontend uses this as its GC-pressure signal — a rising
    /// debt means the next write burst will land in foreground GC.
    #[must_use]
    pub fn gc_debt(&self) -> f64 {
        let target = self.target_free.as_u64();
        if target == 0 {
            return 0.0;
        }
        let free = self.free_capacity.as_u64().min(target);
        (target - free) as f64 / target as f64
    }
}

/// A complete simulated storage system: one workload driving one page
/// cache and one FTL under one background-GC policy.
///
/// See the [module documentation](crate::system) for the execution model.
/// Construction wires everything; [`run`](SsdSystem::run) consumes the
/// workload and returns the [`SimReport`].
///
/// # Driving the engine externally
///
/// [`run`](SsdSystem::run) owns the closed-loop schedule for a standalone
/// device. A composing layer (the `jitgc-array` crate) instead drives
/// members through the stepping API — [`prefill`](SsdSystem::prefill),
/// [`offset_tick_phase`](SsdSystem::offset_tick_phase),
/// [`advance_to`](SsdSystem::advance_to), [`step`](SsdSystem::step) and
/// [`finalize`](SsdSystem::finalize) — which execute exactly the same
/// sequence of internal phases, so a single-member array is bit-identical
/// to the standalone path.
pub struct SsdSystem {
    config: SystemConfig,
    ftl: Ftl,
    cache: PageCache,
    policy: Box<dyn GcPolicy>,
    workload: Box<dyn Workload>,
    buffered_pred: BufferedWritePredictor,
    direct_pred: DirectWritePredictor,
    accuracy: AccuracyTracker,
    latencies: LatencyRecorder,

    // Timeline.
    device_busy_until: SimTime,
    schedule: SimTime,
    /// Per application thread: when its previous request completed.
    /// `queue_depth` threads share the workload stream round-robin.
    thread_completion: Vec<SimTime>,
    next_thread: usize,
    next_tick: SimTime,
    /// BGC reclaims toward this free-capacity target during idle gaps.
    target_free: ByteSize,
    /// Total predicted demands at the last poll (for [`GcSignals`]).
    last_buffered_demand: u64,
    last_direct_demand: u64,

    // Interval accounting.
    direct_bytes_interval: u64,
    host_pages_at_tick: u64,
    /// Per-interval device write traffic (bytes), one logical entry per
    /// past tick — compacted below the oldest pending prediction and
    /// run-length encoded across idle spans, so it stays bounded on
    /// endurance runs.
    interval_actuals: IntervalLog,
    /// Horizon predictions awaiting scoring: (tick index they were made
    /// at, predicted bytes over the following `N_wb` intervals).
    pending_predictions: std::collections::VecDeque<(usize, u64)>,

    // Quiescence fast-forward (DESIGN.md §15). `last_tick_noop` is the
    // dirty-flag core: the most recent tick verified itself a zero-traffic
    // fixed point of `handle_tick`, and the capacity snapshot detects any
    // FTL perturbation (BGC, trim, block retirement) since.
    fast_forward: bool,
    last_tick_noop: bool,
    /// The prediction that tick pushed (`None` or `Some(0)` when noop).
    last_tick_predicted: Option<u64>,
    noop_free_pages: u64,
    noop_reclaimable: ByteSize,
    ticks_skipped: u64,
    ff_spans: u64,

    // Counters.
    ops: u64,
    reads: u64,
    buffered_writes: u64,
    direct_writes: u64,
    trims: u64,
    fgc_request_stalls: u64,
    fgc_flush_stalls: u64,
    throttled_requests: u64,
    timeline: Vec<crate::system::IntervalSample>,

    // End-of-life bookkeeping (see the fault model in `jitgc-nand`).
    /// When the FTL's read-only transition was first observed.
    read_only_at: Option<SimTime>,
    /// Host pages the device had accepted (post-prefill) at that moment —
    /// the numerator of the lifetime metric.
    lifetime_host_pages: u64,
    /// Host requests refused because the device is read-only.
    rejected_requests: u64,
    /// LPNs of the current request whose flash read came back
    /// uncorrectable; cleared at the start of every request, so after
    /// [`step`](Self::step) it describes exactly that request (the array
    /// layer repairs these from the mirror replica).
    failed_reads: Vec<Lpn>,

    // Scratch storage reused across polls and requests so the steady
    // state allocates nothing: the SIP list ping-pongs between the
    // predictor and the FTL, and batched LPNs are staged in one vector.
    sip_scratch: SipList,
    lpn_scratch: Vec<Lpn>,

    // Opt-in wall-clock phase profiling (see [`PhaseProfile`]).
    profile_enabled: bool,
    profile: PhaseProfile,
}

// Whole systems move across array worker threads between scheduling
// quanta; keep the guarantee compile-time so a non-`Send` field (or trait
// object bound) fails here and not deep inside the scheduler.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SsdSystem>()
};

impl SsdSystem {
    /// Builds a system from its three parts.
    #[must_use]
    pub fn new(
        mut config: SystemConfig,
        policy: Box<dyn GcPolicy>,
        workload: Box<dyn Workload>,
    ) -> Self {
        let mut ftl = Ftl::new(config.ftl.clone(), config.victim.build());
        ftl.set_sip_filter_enabled(policy.uses_sip());
        // The engine ticks the flusher every `config.flusher_period`, so
        // tell the cache that period: its dirty-age epoch counters then
        // line up with the predictor's poll times and `predict_into` can
        // take the O(1)-per-bucket fast path instead of scanning the
        // dirty list (the result is identical either way).
        config.cache = config.cache.with_flusher_period(config.flusher_period);
        let cache = PageCache::new(config.cache);
        let mut buffered_pred = BufferedWritePredictor::new(
            config.flusher_period,
            config.tau_expire(),
            config.ftl.geometry().page_size(),
        );
        if config.strict_tau_flush {
            buffered_pred = buffered_pred.with_strict_tau_flush();
        }
        let direct_pred = DirectWritePredictor::new(
            config.flusher_period,
            config.tau_expire(),
            config.cdh_percentile,
            config.cdh_bin_bytes,
        );
        let next_tick = SimTime::ZERO + config.flusher_period;
        SsdSystem {
            ftl,
            cache,
            policy,
            workload,
            buffered_pred,
            direct_pred,
            accuracy: AccuracyTracker::new(),
            latencies: LatencyRecorder::new(),
            device_busy_until: SimTime::ZERO,
            schedule: SimTime::ZERO,
            thread_completion: vec![SimTime::ZERO; config.queue_depth.max(1) as usize],
            next_thread: 0,
            next_tick,
            target_free: ByteSize::ZERO,
            last_buffered_demand: 0,
            last_direct_demand: 0,
            direct_bytes_interval: 0,
            host_pages_at_tick: 0,
            interval_actuals: IntervalLog::new(),
            pending_predictions: std::collections::VecDeque::new(),
            fast_forward: true,
            last_tick_noop: false,
            last_tick_predicted: None,
            noop_free_pages: 0,
            noop_reclaimable: ByteSize::ZERO,
            ticks_skipped: 0,
            ff_spans: 0,
            ops: 0,
            reads: 0,
            buffered_writes: 0,
            direct_writes: 0,
            trims: 0,
            fgc_request_stalls: 0,
            fgc_flush_stalls: 0,
            throttled_requests: 0,
            timeline: Vec::new(),
            read_only_at: None,
            lifetime_host_pages: 0,
            rejected_requests: 0,
            failed_reads: Vec::new(),
            sip_scratch: SipList::new(),
            lpn_scratch: Vec::new(),
            profile_enabled: false,
            profile: PhaseProfile::default(),
            config,
        }
    }

    /// Turns on wall-clock phase profiling for subsequent work. The
    /// probes are two `Instant` reads per phase entry and never influence
    /// simulated behaviour; reports stay identical either way.
    pub fn enable_phase_profiling(&mut self) {
        self.profile_enabled = true;
        self.ftl.enable_gc_copy_profiling();
    }

    /// The accumulated per-phase wall-clock breakdown (all zero unless
    /// [`enable_phase_profiling`](SsdSystem::enable_phase_profiling) was
    /// called before [`run`](SsdSystem::run)). The `gc_copy` sub-phase is
    /// collected inside the FTL and merged here.
    #[must_use]
    pub fn phase_profile(&self) -> PhaseProfile {
        let mut profile = self.profile;
        profile.gc_copy = self.ftl.gc_copy_wall();
        profile
    }

    fn timer(&self) -> Option<std::time::Instant> {
        self.profile_enabled.then(std::time::Instant::now)
    }

    /// Runs the workload to exhaustion and reports.
    ///
    /// # Panics
    ///
    /// Panics if the FTL signals an unrecoverable condition (no
    /// reclaimable space), which indicates a misconfigured experiment.
    pub fn run(&mut self) -> SimReport {
        if self.config.prefill {
            self.prefill();
        }
        while let Some(req) = self.workload.next_request() {
            // True closed loop: an application thread thinks for `gap`
            // after its previous request completes, then issues the next
            // one. Every stall therefore lengthens the run and lowers
            // IOPS — exactly how the paper's benchmarks observe GC. With
            // `queue_depth > 1`, several such threads share the stream
            // round-robin and overlap at the device.
            let thread = self.next_thread;
            self.next_thread = (self.next_thread + 1) % self.thread_completion.len();
            let issue = self.thread_completion[thread] + req.gap;
            self.schedule = self.schedule.max(issue);
            let completion = self.step(req, issue);
            self.thread_completion[thread] = completion;
        }
        let end = self
            .thread_completion
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(self.schedule);
        self.finalize(end)
    }

    /// Issues one request at simulated time `issue` and returns its
    /// completion time. Runs the exact per-request sequence of
    /// [`run`](SsdSystem::run): periodic host work up to `issue`,
    /// background GC in the idle gap, then the request itself, recorded
    /// in this system's latency and request counters.
    ///
    /// This is the hook an external scheduler (the array layer) uses to
    /// advance members in virtual-time lockstep; the caller owns the
    /// closed-loop schedule (think times, thread completion bookkeeping).
    pub fn step(&mut self, req: IoRequest, issue: SimTime) -> SimTime {
        self.catch_up(issue);
        let t0 = self.timer();
        let completion = self.execute(req, issue);
        if let Some(t0) = t0 {
            self.profile.request_execution += t0.elapsed();
        }
        self.latencies.record(completion.saturating_since(issue));
        self.ops += 1;
        completion
    }

    /// Processes periodic host work (flusher, predictors, policy) and
    /// idle-gap background GC up to time `t` without issuing a request —
    /// how an external scheduler lets a member's clock advance through a
    /// stretch where no request touched it.
    pub fn advance_to(&mut self, t: SimTime) {
        self.catch_up(t);
    }

    /// Builds the final report, treating `end` as the run's end time
    /// (callers that drive the engine via [`step`](SsdSystem::step) own
    /// the schedule and therefore know when the run ended).
    pub fn finalize(&mut self, end: SimTime) -> SimReport {
        let t0 = self.timer();
        let report = self.build_report(end);
        if let Some(t0) = t0 {
            self.profile.reporting += t0.elapsed();
        }
        report
    }

    /// Shifts the first flusher tick later by `offset`, staggering this
    /// system's periodic host work (flush, predictor polls, policy
    /// decisions and therefore BGC target updates) relative to peers that
    /// keep the default phase. Call before the first request; the array
    /// layer uses this to de-correlate member GC activity.
    pub fn offset_tick_phase(&mut self, offset: SimDuration) {
        assert_eq!(self.ops, 0, "tick phase must be set before any request");
        self.next_tick += offset;
    }

    /// Current JIT-GC telemetry for array-level coordination.
    #[must_use]
    pub fn gc_signals(&self) -> GcSignals {
        GcSignals {
            free_capacity: self.ftl.free_capacity(),
            reclaimable_capacity: self.ftl.reclaimable_capacity(),
            target_free: self.target_free,
            predicted_buffered_bytes: self.last_buffered_demand,
            predicted_direct_bytes: self.last_direct_demand,
            busy_until: self.device_busy_until,
            fgc_invocations: self.ftl.stats().fgc_invocations,
        }
    }

    /// This member's virtual clock: the next instant at which it owes
    /// periodic host work (flusher tick, predictor poll, policy
    /// decision). Everything strictly before it has already been
    /// processed, so an external scheduler can treat it as "how far this
    /// member has advanced".
    #[must_use]
    pub fn virtual_clock(&self) -> SimTime {
        self.next_tick
    }

    /// How far this member's clock trails `horizon` — the span of
    /// periodic work it still has to chew through before it can execute
    /// a request issued at the horizon. O(1): an external scheduler
    /// calls this per member per quantum to order work laggiest-first,
    /// so it must not touch FTL state. Zero when the member is already
    /// at or past the horizon.
    #[must_use]
    pub fn time_behind(&self, horizon: SimTime) -> SimDuration {
        horizon.saturating_since(self.next_tick)
    }

    /// Cumulative foreground-GC invocations so far. Sampling this around
    /// a [`step`](SsdSystem::step) tells an external scheduler whether
    /// the step stalled on foreground GC — the per-member straggler
    /// attribution the array layer reports.
    #[must_use]
    pub fn fgc_invocations(&self) -> u64 {
        self.ftl.stats().fgc_invocations
    }

    /// Ages the device: writes the whole working set once in scrambled
    /// order (a Fisher–Yates permutation, modelling how a filesystem's
    /// allocator sprays logical addresses over time), then resets every
    /// counter so measurements cover only steady state. The fill itself is
    /// free of simulated time — it stands for hours of prior use.
    ///
    /// [`run`](SsdSystem::run) calls this itself when
    /// [`SystemConfig::prefill`] is set; external schedulers driving the
    /// engine via [`step`](SsdSystem::step) must call it once up front.
    pub fn prefill(&mut self) {
        let ws = self.workload.working_set_pages();
        let mut lpns: Vec<u64> = (0..ws).collect();
        let mut rng = jitgc_sim::SimRng::seed(0xA6ED);
        for i in (1..lpns.len()).rev() {
            let j = rng.range_u64(0, i as u64 + 1) as usize;
            lpns.swap(i, j);
        }
        for lpn in lpns {
            self.ftl
                .host_write(jitgc_nand::Lpn(lpn), SimTime::ZERO)
                .expect("prefill stays within user space");
        }
        self.ftl.reset_counters();
        self.host_pages_at_tick = 0;
    }

    // ------------------------------------------------------------------
    // Periodic host work (flusher + predictors + policy)
    // ------------------------------------------------------------------

    /// Catches the engine up to time `t`: all owed periodic host work
    /// (flusher, predictors, policy — looped or fast-forwarded) followed
    /// by background GC in the idle gap up to `t`. This is the single
    /// shared preamble of [`step`](Self::step) and
    /// [`advance_to`](Self::advance_to), so every tick in the simulation
    /// funnels through one place — and so does the fast-forward decision.
    fn catch_up(&mut self, t: SimTime) {
        if self.next_tick <= t {
            let t0 = self.timer();
            self.process_ticks_until(t);
            if let Some(t0) = t0 {
                self.profile.tick += t0.elapsed();
            }
        }
        self.run_bgc_in_gap(t);
    }

    fn process_ticks_until(&mut self, t: SimTime) {
        while self.next_tick <= t {
            // Quiescence can be *reached* partway through a long idle
            // span (the cache drains and the predictors saturate during
            // the first ticks of the gap), so the check runs before every
            // tick, not just once on entry. The first tick that verifies
            // skips the whole remainder in one bulk update.
            if self.fast_forward && self.can_fast_forward() {
                let span = t.saturating_since(self.next_tick);
                let k = span.div_duration(self.config.flusher_period) + 1;
                #[cfg(debug_assertions)]
                self.fast_forward_checked(k, t);
                #[cfg(not(debug_assertions))]
                self.fast_forward_span(k);
                self.ticks_skipped += k;
                self.ff_spans += 1;
                return;
            }
            let tick = self.next_tick;
            self.run_bgc_in_gap(tick);
            self.handle_tick(tick);
            self.next_tick = tick + self.config.flusher_period;
        }
    }

    /// The plain per-tick path, with no fast-forward consideration: the
    /// debug oracle replays skipped spans through this to prove the bulk
    /// update exact.
    #[cfg(debug_assertions)]
    fn run_tick_loop(&mut self, t: SimTime) {
        while self.next_tick <= t {
            let tick = self.next_tick;
            self.run_bgc_in_gap(tick);
            self.handle_tick(tick);
            self.next_tick = tick + self.config.flusher_period;
        }
    }

    /// The quiescence check (DESIGN.md §15): `true` when the next tick —
    /// and by induction every tick until an external event — would map
    /// the engine exactly onto its current state. Cheap dirty-flag and
    /// counter comparisons come first; the O(window) predictor scans run
    /// only once everything else has passed.
    fn can_fast_forward(&self) -> bool {
        // The most recent tick must have verified itself a no-op, and
        // nothing may have perturbed the FTL's capacity picture since
        // (BGC, trim, read-repair block retirement…).
        if !self.last_tick_noop
            || self.cache.dirty_count() > 0
            || self.direct_bytes_interval != 0
            || self.ftl.stats().host_pages_written != self.host_pages_at_tick
            || self.ftl.free_pages() != self.noop_free_pages
            || self.ftl.reclaimable_capacity() != self.noop_reclaimable
        {
            return false;
        }
        // Per-tick side effects the bulk update does not model.
        if self.config.record_timeline || self.config.wear_leveling {
            return false;
        }
        // BGC must be at target, otherwise inter-tick gaps do real work.
        if self.ftl.free_pages() < self.target_free.as_u64() / self.page_size().as_u64() {
            return false;
        }
        // The SG_IO cost folds into a closed form only when one tick's
        // commands fit within the period (Lindley recursion unrolling
        // needs c ≤ p); gate rather than assume.
        if self.sip_tick_cost_applies()
            && self.config.host_command_overhead.saturating_mul(4) > self.config.flusher_period
        {
            return false;
        }
        // Predictor and policy must be exact self-maps on a zero
        // interval (lazy O(window) scans).
        self.direct_pred.at_zero_traffic_fixed_point() && self.policy.zero_traffic_fixed_point()
    }

    fn sip_tick_cost_applies(&self) -> bool {
        self.policy.uses_sip()
            && self.config.manager_placement == crate::system::ManagerPlacement::Host
    }

    /// Applies the net effect of `k` consecutive quiescent ticks in
    /// O(`N_wb`) instead of O(`k`):
    ///
    /// * `k` zero entries join the interval log (O(1), run-length
    ///   encoded);
    /// * pre-span pending predictions whose horizon closes inside the
    ///   span score against their exact windows (same FIFO order, same
    ///   `u64` sums, same float operations as the per-tick loop);
    /// * in-span zero-predictions that mature within the span collapse
    ///   to a bulk empty-skip; the last `min(k, N_wb)` survive into the
    ///   queue;
    /// * the per-tick SG_IO device cost folds in closed form
    ///   `busy' = max(busy + k·c, T_k + c)` (valid because `c ≤ p` was
    ///   gated);
    /// * the clock jumps past the span.
    ///
    /// Everything else — cache, FTL, predictors, policy, demand
    /// snapshots, `host_pages_at_tick` — is untouched, which is exactly
    /// what `can_fast_forward` certified.
    fn fast_forward_span(&mut self, k: u64) {
        let p = self.config.flusher_period;
        let nwb = self.config.nwb();
        let l0 = self.interval_actuals.len();
        self.interval_actuals.append_zeros(k as usize);
        let new_len = l0 + k as usize;
        if self.last_tick_predicted == Some(0) {
            // Each quiescent tick re-issues the verified zero prediction.
            // One made at span tick t (logical index l0 + t) matures once
            // the log reaches l0 + t + N_wb, i.e. still within the span
            // iff t ≤ k − N_wb; those score as 0-vs-0 empty skips. The
            // rest stay pending.
            let survivors = (k as usize).min(nwb);
            self.accuracy.skip_empty(k - survivors as u64);
            for t in (k as usize - survivors + 1)..=(k as usize) {
                self.pending_predictions.push_back((l0 + t, 0));
            }
        }
        // Score pre-span predictions maturing inside the span. They sit
        // ahead of any in-span survivor in the FIFO queue and mature
        // strictly earlier (their made_at is smaller), so this loop pops
        // in exactly the order the per-tick path would.
        while let Some(&(made_at, predicted)) = self.pending_predictions.front() {
            if new_len < made_at + nwb {
                break;
            }
            let actual = self.interval_actuals.sum_range(made_at, made_at + nwb);
            self.accuracy.record(predicted, actual);
            self.pending_predictions.pop_front();
        }
        self.compact_interval_log();
        let t_last = self.next_tick + p.saturating_mul(k - 1);
        if self.sip_tick_cost_applies() {
            let c = self.config.host_command_overhead.saturating_mul(4);
            self.device_busy_until = (self.device_busy_until + c.saturating_mul(k)).max(t_last + c);
        }
        self.next_tick = t_last + p;
    }

    /// Debug-build oracle: computes the bulk span outcome, rolls it
    /// back, replays the span through the untouched per-tick path, and
    /// asserts the two end states are identical — the strongest form of
    /// the repo's equivalence-oracle convention, run on every skip.
    #[cfg(debug_assertions)]
    fn fast_forward_checked(&mut self, k: u64, t: SimTime) {
        let saved = (
            self.interval_actuals.clone(),
            self.pending_predictions.clone(),
            self.accuracy,
            self.device_busy_until,
            self.next_tick,
            self.target_free,
        );
        self.fast_forward_span(k);
        let expected = (
            self.interval_actuals.clone(),
            self.pending_predictions.clone(),
            self.accuracy,
            self.device_busy_until,
            self.next_tick,
            self.target_free,
        );
        (
            self.interval_actuals,
            self.pending_predictions,
            self.accuracy,
            self.device_busy_until,
            self.next_tick,
            self.target_free,
        ) = saved;
        self.run_tick_loop(t);
        let replayed = (
            self.interval_actuals.clone(),
            self.pending_predictions.clone(),
            self.accuracy,
            self.device_busy_until,
            self.next_tick,
            self.target_free,
        );
        assert_eq!(
            expected, replayed,
            "quiescence fast-forward diverged from the per-tick replay over {k} ticks"
        );
    }

    /// Drops interval-log entries below the oldest window any pending
    /// prediction can still score against (satellite of DESIGN.md §15:
    /// bounded memory on endurance runs).
    fn compact_interval_log(&mut self) {
        let floor = self
            .pending_predictions
            .front()
            .map_or(self.interval_actuals.len(), |&(made_at, _)| made_at);
        self.interval_actuals.compact(floor);
    }

    fn handle_tick(&mut self, now: SimTime) {
        // Direct traffic of the closing interval, read before step 3
        // resets it — one input of the quiescence verdict below.
        let entry_direct_bytes = self.direct_bytes_interval;
        let entry_target = self.target_free;

        // 1. Flusher thread: write back expired / pressured dirty pages.
        let t0 = self.timer();
        let batch = self.cache.flusher_tick(now);
        let batch_was_empty = batch.lpns.is_empty();
        if !batch.lpns.is_empty() {
            match self.ftl.flush_batch(&batch.lpns, now) {
                Ok(out) => {
                    if out.fgc_writes > 0 {
                        self.fgc_flush_stalls += 1;
                    }
                    let start = now.max(self.device_busy_until);
                    self.device_busy_until = start + out.duration;
                    let bytes = self.page_size() * batch.lpns.len() as u64;
                    self.policy.observe_write(bytes, out.duration);
                }
                // End of life: the device stopped accepting writes
                // mid-batch. The remaining dirty data has nowhere to go —
                // it is lost, exactly as on a real drive that dies with a
                // dirty page cache.
                Err(FtlError::ReadOnly) => self.note_read_only(now),
                Err(e) => panic!("flush target within user space: {e}"),
            }
        }
        if let Some(t0) = t0 {
            self.profile.flush += t0.elapsed();
        }

        // 2. Account the device traffic of the interval that just closed
        //    (post-flush to post-flush) and score any prediction whose
        //    full horizon has now elapsed. Predictions are scored over the
        //    whole `N_wb`-interval horizon — that is the quantity the
        //    reservation is sized from (`C_req`), so it is the error that
        //    translates into mis-reservation.
        let host_pages_now = self.ftl.stats().host_pages_written;
        let actual_bytes = (host_pages_now - self.host_pages_at_tick) * self.page_size().as_u64();
        self.host_pages_at_tick = host_pages_now;
        self.interval_actuals.push(actual_bytes);
        let nwb = self.config.nwb();
        while let Some(&(made_at, predicted)) = self.pending_predictions.front() {
            if self.interval_actuals.len() < made_at + nwb {
                break;
            }
            let actual = self.interval_actuals.sum_range(made_at, made_at + nwb);
            self.accuracy.record(predicted, actual);
            self.pending_predictions.pop_front();
        }
        self.compact_interval_log();

        // 3. Kernel-side predictors (paper Sec. 3.2). The SIP list is a
        //    scratch buffer ping-ponged with the FTL (step 5), so the
        //    poll reuses its backing storage instead of reallocating.
        let t0 = self.timer();
        self.direct_pred
            .observe_interval(self.direct_bytes_interval);
        self.direct_bytes_interval = 0;
        let mut sip = std::mem::take(&mut self.sip_scratch);
        let buffered_demand = self.buffered_pred.predict_into(&self.cache, now, &mut sip);
        let direct_demand = self.direct_pred.predict();
        self.last_buffered_demand = buffered_demand.total();
        self.last_direct_demand = direct_demand.total();
        if let Some(t0) = t0 {
            self.profile.predictor += t0.elapsed();
        }

        // 4. Policy decision (paper Sec. 3.3).
        let obs = IntervalObservation {
            now,
            free_capacity: self.ftl.free_capacity(),
            op_capacity: self.ftl.op_capacity(),
            buffered_demand: &buffered_demand,
            direct_demand: &direct_demand,
            device_bytes_last_interval: actual_bytes,
        };
        let decision = self.policy.on_interval(&obs);
        // The paper's feasibility restriction: a reserve beyond what is
        // physically reclaimable would make BGC erase fully-valid blocks
        // for nothing ("useless BGC operations").
        self.target_free = decision.target_free.min(self.ftl.reclaimable_capacity());
        if let Some(predicted) = decision.predicted_next_interval {
            self.pending_predictions
                .push_back((self.interval_actuals.len(), predicted));
        }

        // 5. Ship the SIP list to the FTL. With the manager in the host
        //    (the paper's actual implementation, Fig. 3(b)) each tick pays
        //    the extended-interface cost: the paper measured ~160 µs per
        //    SG_IO command, and JIT-GC exchanges demands, the SIP list,
        //    C_free and the BGC command — four commands. The ideal
        //    in-device manager (Fig. 3(a)) pays nothing.
        if self.policy.uses_sip() {
            let t0 = self.timer();
            // Swap the fresh list in and take last interval's back as the
            // next poll's scratch — allocation-free in steady state.
            self.sip_scratch = self.ftl.install_sip_list(sip);
            if let Some(t0) = t0 {
                self.profile.predictor += t0.elapsed();
            }
            if self.config.manager_placement == crate::system::ManagerPlacement::Host {
                self.device_busy_until = self.device_busy_until.max(now)
                    + self.config.host_command_overhead.saturating_mul(4);
            }
        } else {
            self.sip_scratch = sip;
        }

        // 6. Optional timeline snapshot for time-series analysis.
        if self.config.record_timeline {
            let page = self.page_size().as_u64();
            self.timeline.push(crate::system::IntervalSample {
                t_secs: now.as_secs_f64(),
                free_pages: self.ftl.free_pages(),
                target_pages: self.target_free.as_u64() / page,
                host_pages_interval: actual_bytes / page,
                fgc_cumulative: self.ftl.stats().fgc_invocations,
                bgc_blocks_cumulative: self.ftl.stats().bgc_blocks,
                waf: self.ftl.waf().unwrap_or(1.0),
            });
        }

        // 7. Optional static wear leveling (extension). A device at the
        //    end of its life has nothing left to level — and relocation
        //    itself can fail for lack of a spare block.
        if self.config.wear_leveling && !self.ftl.read_only() {
            match self.ftl.wear_level(now) {
                Ok(out) => {
                    if out.performed {
                        let start = now.max(self.device_busy_until);
                        self.device_busy_until = start + out.duration;
                    }
                }
                Err(FtlError::NoReclaimableSpace | FtlError::ReadOnly) => {
                    // Leveling is best-effort; skip the pass.
                }
                Err(e) => panic!("wear leveling: {e}"),
            }
        }

        // 8. Quiescence verdict (DESIGN.md §15). This tick was a
        //    zero-traffic fixed point iff nothing flowed (empty flush
        //    batch, no host or direct bytes), the post-flush cache is
        //    clean (so the SIP list just installed — if any — was empty
        //    and the buffered demand scan returned zero), both demand
        //    totals are zero, and the policy reproduced its target with a
        //    trivial prediction. Under those conditions — plus the
        //    predictor/policy self-map checks and the capacity snapshot
        //    below, verified again at skip time — the next zero-traffic
        //    tick repeats this one exactly.
        self.last_tick_noop = batch_was_empty
            && actual_bytes == 0
            && entry_direct_bytes == 0
            && self.cache.dirty_count() == 0
            && self.last_buffered_demand == 0
            && self.last_direct_demand == 0
            && self.target_free == entry_target
            && matches!(decision.predicted_next_interval, None | Some(0));
        self.last_tick_predicted = decision.predicted_next_interval;
        if self.last_tick_noop {
            self.noop_free_pages = self.ftl.free_pages();
            self.noop_reclaimable = self.ftl.reclaimable_capacity();
        }
    }

    /// Records the first observation of the device's read-only transition
    /// and freezes the lifetime metric: host pages accepted since the end
    /// of pre-fill ([`prefill`](Self::prefill) resets the counters, so
    /// aging writes never count as lifetime).
    fn note_read_only(&mut self, now: SimTime) {
        if self.read_only_at.is_none() {
            self.read_only_at = Some(now);
            self.lifetime_host_pages = self.ftl.stats().host_pages_written;
        }
    }

    /// Tallies a host request refused because the device is read-only.
    fn reject_request(&mut self, now: SimTime) {
        self.note_read_only(now);
        self.rejected_requests += 1;
    }

    /// Mirror-repair read path: the array layer re-reads LPNs whose copy
    /// on the peer replica came back uncorrectable. Bypasses the page
    /// cache (the data demonstrably was not there) and returns the
    /// completion time plus how many pages failed on *this* replica too —
    /// those are lost for good.
    pub fn recovery_read(&mut self, lpns: &[Lpn], issue: SimTime) -> (SimTime, u64) {
        let out = self
            .ftl
            .host_read_batch(lpns, issue)
            .expect("recovery stays within user space");
        if out.duration.is_zero() {
            return (issue, out.failed);
        }
        let start = issue.max(self.device_busy_until);
        self.device_busy_until = start + out.duration;
        (start + out.duration, out.failed)
    }

    /// Lets background GC consume device idle time in `[busy_until, t)`,
    /// reclaiming toward the policy's current target. Because the budget
    /// ends at the next known event, BGC never delays host work — the
    /// model of a perfectly preemptible collector.
    fn run_bgc_in_gap(&mut self, t: SimTime) {
        let t0 = self.timer();
        self.bgc_in_gap(t);
        if let Some(t0) = t0 {
            self.profile.bgc += t0.elapsed();
        }
    }

    fn bgc_in_gap(&mut self, t: SimTime) {
        if self.device_busy_until >= t {
            return;
        }
        let target_pages = self.target_free.as_u64() / self.page_size().as_u64();
        if self.ftl.free_pages() >= target_pages {
            return;
        }
        let gap_start = self.device_busy_until;
        let budget = t.saturating_since(gap_start);
        let outcome = self
            .ftl
            .background_collect(gap_start, budget, Some(target_pages));
        if outcome.blocks_erased > 0 {
            self.device_busy_until = gap_start + outcome.duration;
            self.policy
                .observe_gc(self.page_size() * outcome.pages_freed, outcome.duration);
        }
    }

    // ------------------------------------------------------------------
    // Request execution
    // ------------------------------------------------------------------

    fn execute(&mut self, req: IoRequest, issue: SimTime) -> SimTime {
        self.failed_reads.clear();
        let mut host_time = SimDuration::ZERO;
        let mut device_time = SimDuration::ZERO;
        match req.kind {
            IoKind::Read => {
                self.reads += 1;
                let mut misses = std::mem::take(&mut self.lpn_scratch);
                misses.clear();
                for lpn in req.lpns() {
                    if self.cache.read(lpn, issue) {
                        host_time += self.config.cache_op_time;
                    } else {
                        misses.push(lpn);
                    }
                }
                if !misses.is_empty() {
                    let out = self
                        .ftl
                        .host_read_batch(&misses, issue)
                        .expect("workload stays within user space");
                    device_time += out.duration;
                    // Never-written data reads back as zeros without
                    // touching the device.
                    host_time += self.config.cache_op_time.saturating_mul(out.unmapped);
                    if out.failed > 0 {
                        self.failed_reads
                            .extend_from_slice(self.ftl.failed_read_lpns());
                    }
                }
                self.lpn_scratch = misses;
            }
            IoKind::BufferedWrite => {
                self.buffered_writes += 1;
                // The cache is saturated with dirty data: the oldest
                // pages must hit the device before this write can be
                // absorbed. Stage them and issue one batch below.
                let mut writebacks = std::mem::take(&mut self.lpn_scratch);
                writebacks.clear();
                for lpn in req.lpns() {
                    host_time += self.config.cache_op_time;
                    let effect = self.cache.write(lpn, issue);
                    writebacks.extend(effect.forced_writebacks);
                }
                if !writebacks.is_empty() {
                    match self.ftl.host_write_batch(&writebacks, issue) {
                        Ok(out) => {
                            device_time += out.duration;
                            // Every forced write-back that hit foreground GC
                            // is its own stall, exactly as in the per-page
                            // loop.
                            self.fgc_request_stalls += out.fgc_writes;
                        }
                        Err(FtlError::ReadOnly) => self.reject_request(issue),
                        Err(e) => panic!("cache holds user-space pages: {e}"),
                    }
                }
                self.lpn_scratch = writebacks;
                // Linux dirty throttling: past the hard dirty ratio this
                // writer performs write-back itself — synchronously, GC
                // stalls and all. This is how a slow flush path reaches
                // the application.
                let throttled = self.cache.throttle_excess();
                if !throttled.is_empty() {
                    self.throttled_requests += 1;
                    match self.ftl.host_write_batch(&throttled, issue) {
                        Ok(out) => {
                            device_time += out.duration;
                            self.fgc_request_stalls += u64::from(out.fgc_writes > 0);
                        }
                        Err(FtlError::ReadOnly) => self.reject_request(issue),
                        Err(e) => panic!("cache holds user-space pages: {e}"),
                    }
                }
            }
            IoKind::DirectWrite => {
                self.direct_writes += 1;
                let mut lpns = std::mem::take(&mut self.lpn_scratch);
                lpns.clear();
                lpns.extend(req.lpns());
                match self.ftl.host_write_batch(&lpns, issue) {
                    Ok(out) => {
                        device_time += out.duration;
                        self.fgc_request_stalls += u64::from(out.fgc_writes > 0);
                        for &lpn in &lpns {
                            // A direct write supersedes any cached copy;
                            // drop it so a stale flush cannot overwrite the
                            // new data.
                            self.cache.invalidate(lpn);
                        }
                        let bytes = self.page_size() * u64::from(req.pages);
                        self.direct_bytes_interval += bytes.as_u64();
                        self.policy.observe_write(bytes, device_time);
                    }
                    Err(FtlError::ReadOnly) => self.reject_request(issue),
                    Err(e) => panic!("workload stays within user space: {e}"),
                }
                self.lpn_scratch = lpns;
            }
            IoKind::Trim => {
                self.trims += 1;
                for lpn in req.lpns() {
                    match self.ftl.trim(lpn, issue) {
                        Ok(()) => host_time += self.config.cache_op_time,
                        Err(FtlError::ReadOnly) => {
                            self.reject_request(issue);
                            break;
                        }
                        Err(e) => panic!("workload stays within user space: {e}"),
                    }
                }
            }
        }

        if device_time.is_zero() {
            issue + host_time
        } else {
            let start = issue.max(self.device_busy_until);
            self.device_busy_until = start + device_time;
            start + device_time + host_time
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    fn page_size(&self) -> ByteSize {
        self.config.ftl.geometry().page_size()
    }

    fn build_report(&self, end: SimTime) -> SimReport {
        let secs = end.as_secs_f64().max(f64::MIN_POSITIVE);
        let lat = |q: f64| self.latencies.percentile(q).map_or(0, |d| d.as_micros());
        let stats = self.ftl.stats();
        SimReport {
            policy: self.policy.name().to_owned(),
            workload: self.workload.name().to_owned(),
            victim_policy: self.ftl.victim_policy().to_owned(),
            duration_secs: secs,
            ops: self.ops,
            iops: self.ops as f64 / secs,
            reads: self.reads,
            buffered_writes: self.buffered_writes,
            direct_writes: self.direct_writes,
            trims: self.trims,
            waf: self.ftl.waf(),
            nand_erases: self.ftl.device().stats().erases,
            wear: self.ftl.device().wear_report(),
            fgc_request_stalls: self.fgc_request_stalls,
            fgc_flush_stalls: self.fgc_flush_stalls,
            throttled_requests: self.throttled_requests,
            bgc_blocks: stats.bgc_blocks,
            gc_pages_migrated: stats.gc_pages_migrated,
            latency_mean_us: self.latencies.mean().map_or(0, |d| d.as_micros()),
            latency_p50_us: lat(0.50),
            latency_p99_us: lat(0.99),
            latency_p999_us: lat(0.999),
            latency_max_us: self.latencies.max().map_or(0, |d| d.as_micros()),
            prediction_accuracy_percent: self.accuracy.mean_accuracy_percent(),
            sip_filtered_fraction: stats.sip_filtered_fraction(),
            cache_hit_ratio: self.cache.stats().hit_ratio(),
            host_pages_written: stats.host_pages_written,
            nand_pages_programmed: self.ftl.device().stats().programs,
            timeline: self.timeline.clone(),
            degraded: self.degraded_report(),
        }
    }

    /// Builds the end-of-life section, or `None` for a healthy run —
    /// omitting the section keeps fault-free reports byte-identical with
    /// builds that predate the fault model.
    fn degraded_report(&self) -> Option<crate::system::DegradedReport> {
        let stats = self.ftl.stats();
        let device = self.ftl.device().stats();
        let events = self.ftl.degrade_events();
        let healthy = events.is_empty()
            && !self.ftl.read_only()
            && stats.program_retries == 0
            && stats.gc_read_failures == 0
            && stats.host_read_failures == 0
            && device.read_failures == 0;
        if healthy {
            return None;
        }
        let page_bytes = self.page_size().as_u64();
        Some(crate::system::DegradedReport {
            read_only: self.ftl.read_only(),
            read_only_at_secs: self.read_only_at.map(SimTime::as_secs_f64),
            lifetime_host_bytes: self
                .read_only_at
                .map(|_| self.lifetime_host_pages * page_bytes),
            retired_blocks: self.ftl.retired_blocks(),
            retired_pages: self.ftl.retired_pages(),
            program_retries: stats.program_retries,
            gc_read_failures: stats.gc_read_failures,
            host_read_failures: stats.host_read_failures,
            rejected_requests: self.rejected_requests,
            events: events
                .iter()
                .map(|e| crate::system::DegradeEventRecord {
                    t_secs: e.time.as_secs_f64(),
                    kind: match e.kind {
                        DegradeKind::BlockRetired(_) => "block_retired".to_owned(),
                        DegradeKind::ReadOnly => "read_only".to_owned(),
                    },
                    block: match e.kind {
                        DegradeKind::BlockRetired(b) => Some(u64::from(b.0)),
                        DegradeKind::ReadOnly => None,
                    },
                })
                .collect(),
        })
    }

    /// Read-only access to the FTL (for tests and examples).
    #[must_use]
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Selects the GC migration path: bulk `copy_pages` (default) or the
    /// per-page loop it replaced. Observationally identical — the switch
    /// exists for A/B measurement (see `Ftl::set_bulk_gc`).
    pub fn set_bulk_gc(&mut self, enabled: bool) {
        self.ftl.set_bulk_gc(enabled);
    }

    /// Selects the tick-processing path: quiescence fast-forward
    /// (default) or the pure per-tick loop. Observationally identical —
    /// reports are byte-for-byte the same either way (debug builds
    /// replay every skipped span and assert it); the switch exists for
    /// A/B measurement and as the release-build oracle hook.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Ticks skipped by the quiescence fast-forward so far. Zero with
    /// the fast-forward off; deliberately *not* part of [`SimReport`] so
    /// reports stay byte-identical across the switch.
    #[must_use]
    pub fn ticks_skipped(&self) -> u64 {
        self.ticks_skipped
    }

    /// Contiguous fast-forwarded spans so far (each covers one or more
    /// skipped ticks).
    #[must_use]
    pub fn ff_spans(&self) -> u64 {
        self.ff_spans
    }

    /// Explicitly stored interval-log entries (the logical tick count
    /// keeps growing; this must stay bounded — asserted by the memory
    /// regression tests).
    #[doc(hidden)]
    #[must_use]
    pub fn interval_log_materialized_len(&self) -> usize {
        self.interval_actuals.materialized_len()
    }

    /// LPNs of the most recent request whose flash read came back
    /// uncorrectable — empty after any request that read cleanly. The
    /// array layer re-reads these from the mirror replica via
    /// [`recovery_read`](Self::recovery_read).
    #[must_use]
    pub fn failed_read_lpns(&self) -> &[Lpn] {
        &self.failed_reads
    }

    /// Read-only access to the page cache (for tests and examples).
    #[must_use]
    pub fn cache(&self) -> &PageCache {
        &self.cache
    }

    /// The system's configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// When the device finishes its currently accepted work.
    #[must_use]
    pub fn device_busy_until(&self) -> SimTime {
        self.device_busy_until
    }

    /// The name of the workload driving (or, under an external scheduler,
    /// labelling) this system.
    #[must_use]
    pub fn workload_name(&self) -> &'static str {
        self.workload.name()
    }

    /// The installed policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdpGc, JitGc, NoBgc, ReservedCapacity};
    use jitgc_workload::{BenchmarkKind, WorkloadConfig};

    fn run(policy: Box<dyn GcPolicy>, kind: BenchmarkKind, secs: u64, seed: u64) -> SimReport {
        let config = SystemConfig::small_for_tests();
        let wl_cfg = WorkloadConfig::builder()
            .working_set_pages(config.ftl.user_pages() / 2)
            .duration(SimDuration::from_secs(secs))
            .mean_iops(1_500.0)
            .seed(seed)
            .build();
        let workload = kind.build(wl_cfg);
        SsdSystem::new(config, policy, workload).run()
    }

    fn adp(config: &SystemConfig) -> AdpGc {
        let (bw, gc) = config.default_bandwidths();
        AdpGc::new(
            config.flusher_period,
            config.tau_expire(),
            config.cdh_percentile,
            config.cdh_bin_bytes,
            bw,
            gc,
        )
    }

    #[test]
    fn zero_host_write_run_reports_no_waf() {
        // Prefill resets the FTL counters, so an all-read workload ends
        // the measured window with zero host writes — the WAF ratio is
        // undefined and must surface as None, not a fabricated 1.0.
        let config = SystemConfig::small_for_tests();
        let wl_cfg = WorkloadConfig::builder()
            .working_set_pages(config.ftl.user_pages() / 2)
            .duration(SimDuration::from_secs(5))
            .mean_iops(500.0)
            .seed(9)
            .build();
        let workload = jitgc_workload::Synthetic::builder()
            .read_fraction(1.0)
            .build(wl_cfg);
        let report = SsdSystem::new(config, Box::new(NoBgc), Box::new(workload)).run();
        assert!(report.ops > 0);
        assert_eq!(report.host_pages_written, 0);
        assert_eq!(report.waf, None);
    }

    #[test]
    fn runs_to_completion_and_reports() {
        let report = run(Box::new(NoBgc), BenchmarkKind::Ycsb, 30, 1);
        assert!(report.ops > 10_000, "ops {}", report.ops);
        assert!(report.iops > 0.0);
        assert!(report.waf.expect("host writes happened") >= 1.0);
        assert!(report.duration_secs >= 29.0);
        assert_eq!(report.policy, "No-BGC");
        assert_eq!(report.workload, "YCSB");
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SystemConfig::small_for_tests();
        let a = run(
            Box::new(JitGc::from_system_config(&cfg)),
            BenchmarkKind::Postmark,
            20,
            3,
        );
        let b = run(
            Box::new(JitGc::from_system_config(&cfg)),
            BenchmarkKind::Postmark,
            20,
            3,
        );
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.waf, b.waf);
        assert_eq!(a.nand_erases, b.nand_erases);
        assert_eq!(a.latency_p99_us, b.latency_p99_us);
    }

    #[test]
    fn aggressive_policy_reduces_fgc_stalls() {
        let cfg = SystemConfig::small_for_tests();
        let lazy = run(
            Box::new(ReservedCapacity::lazy(cfg.op_capacity())),
            BenchmarkKind::Ycsb,
            60,
            5,
        );
        let aggressive = run(
            Box::new(ReservedCapacity::aggressive(cfg.op_capacity())),
            BenchmarkKind::Ycsb,
            60,
            5,
        );
        let lazy_stalls = lazy.fgc_request_stalls + lazy.fgc_flush_stalls;
        let agg_stalls = aggressive.fgc_request_stalls + aggressive.fgc_flush_stalls;
        assert!(
            agg_stalls <= lazy_stalls,
            "aggressive {agg_stalls} vs lazy {lazy_stalls}"
        );
        assert!(aggressive.iops >= lazy.iops * 0.95);
    }

    #[test]
    fn jit_reports_prediction_accuracy_and_sip() {
        let cfg = SystemConfig::small_for_tests();
        let report = run(
            Box::new(JitGc::from_system_config(&cfg)),
            BenchmarkKind::Ycsb,
            60,
            7,
        );
        let acc = report
            .prediction_accuracy_percent
            .expect("JIT-GC predicts every interval");
        assert!(acc > 15.0, "accuracy {acc}");
        assert!(report.bgc_blocks > 0, "JIT-GC should reclaim in background");
    }

    #[test]
    fn adp_reports_prediction_accuracy() {
        let cfg = SystemConfig::small_for_tests();
        let report = run(Box::new(adp(&cfg)), BenchmarkKind::Ycsb, 60, 7);
        assert!(report.prediction_accuracy_percent.is_some());
        assert!(report.sip_filtered_fraction.is_none(), "ADP has no SIP");
    }

    #[test]
    fn reserved_policies_do_not_predict() {
        let cfg = SystemConfig::small_for_tests();
        let report = run(
            Box::new(ReservedCapacity::lazy(cfg.op_capacity())),
            BenchmarkKind::Filebench,
            30,
            2,
        );
        assert_eq!(report.prediction_accuracy_percent, None);
    }

    #[test]
    fn request_counts_add_up() {
        let report = run(Box::new(NoBgc), BenchmarkKind::Postmark, 20, 9);
        assert_eq!(
            report.ops,
            report.reads + report.buffered_writes + report.direct_writes + report.trims
        );
    }

    #[test]
    fn trims_flow_through_to_the_ftl() {
        // Postmark deletes files; the trims must reach the FTL and release
        // mapped space.
        let report = run(Box::new(NoBgc), BenchmarkKind::Postmark, 20, 4);
        assert!(report.trims > 0, "postmark emitted no trims");
    }

    #[test]
    fn unmapped_reads_are_served_as_zero_fill() {
        // Without prefill, early reads hit never-written pages; the engine
        // must serve them without device time and without panicking.
        let report = run(Box::new(NoBgc), BenchmarkKind::Filebench, 10, 6);
        assert!(report.reads > 0);
        assert!(report.ops > 1_000);
    }

    #[test]
    fn accessors_expose_components() {
        let config = SystemConfig::small_for_tests();
        let wl_cfg = jitgc_workload::WorkloadConfig::builder()
            .working_set_pages(config.ftl.user_pages() / 2)
            .duration(SimDuration::from_secs(2))
            .build();
        let system = SsdSystem::new(
            config.clone(),
            Box::new(NoBgc),
            BenchmarkKind::Ycsb.build(wl_cfg),
        );
        assert_eq!(system.policy_name(), "No-BGC");
        assert_eq!(system.ftl().config().user_pages(), config.ftl.user_pages());
        assert!(system.cache().is_empty());
    }

    #[test]
    fn prefill_maps_whole_working_set_before_measurement() {
        let mut config = SystemConfig::small_for_tests();
        config.prefill = true;
        let ws = config.ftl.user_pages() / 2;
        let wl_cfg = jitgc_workload::WorkloadConfig::builder()
            .working_set_pages(ws)
            .duration(SimDuration::from_secs(2))
            .build();
        let mut system = SsdSystem::new(config, Box::new(NoBgc), BenchmarkKind::TpcC.build(wl_cfg));
        let report = system.run();
        // Counters were reset after the fill: host writes reflect only the
        // measured phase, yet the device holds at least the working set.
        assert!(report.host_pages_written < ws + report.ops * 4);
        assert!(system.ftl().device().total_valid_pages() >= ws);
    }

    #[test]
    fn timeline_recording_captures_every_interval() {
        let mut config = SystemConfig::small_for_tests();
        config.record_timeline = true;
        let wl_cfg = jitgc_workload::WorkloadConfig::builder()
            .working_set_pages(config.ftl.user_pages() / 2)
            .duration(SimDuration::from_secs(20))
            .mean_iops(800.0)
            .seed(3)
            .build();
        let report = SsdSystem::new(
            config.clone(),
            Box::new(NoBgc),
            BenchmarkKind::Ycsb.build(wl_cfg),
        )
        .run();
        // One sample per flusher period over the run (±1 at the edges).
        let expected = report.duration_secs / config.flusher_period.as_secs_f64();
        assert!(
            (report.timeline.len() as f64 - expected).abs() <= 2.0,
            "{} samples for {expected:.1} intervals",
            report.timeline.len()
        );
        // Time strictly increases and WAF is sane everywhere.
        for pair in report.timeline.windows(2) {
            assert!(pair[0].t_secs < pair[1].t_secs);
        }
        assert!(report.timeline.iter().all(|s| s.waf >= 1.0));
    }

    #[test]
    fn timeline_off_by_default() {
        let report = run(Box::new(NoBgc), BenchmarkKind::Ycsb, 5, 3);
        assert!(report.timeline.is_empty());
    }

    #[test]
    #[cfg(feature = "serde")]
    fn system_config_serde_round_trips() {
        let config = SystemConfig::default_sim();
        let json = serde_json::to_string(&config).expect("serialize");
        let back: SystemConfig = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.ftl.user_pages(), config.ftl.user_pages());
        assert_eq!(back.flusher_period, config.flusher_period);
        assert_eq!(back.victim, config.victim);
        assert_eq!(back.queue_depth, config.queue_depth);
        assert_eq!(back.prefill, config.prefill);
    }

    #[test]
    fn phase_profiling_is_opt_in_and_does_not_change_results() {
        let cfg = SystemConfig::small_for_tests();
        let make = || {
            let wl_cfg = WorkloadConfig::builder()
                .working_set_pages(cfg.ftl.user_pages() / 2)
                .duration(SimDuration::from_secs(20))
                .mean_iops(1_500.0)
                .seed(3)
                .build();
            SsdSystem::new(
                cfg.clone(),
                Box::new(JitGc::from_system_config(&cfg)),
                BenchmarkKind::Ycsb.build(wl_cfg),
            )
        };
        let mut plain = make();
        let base = plain.run();
        assert_eq!(
            plain.phase_profile(),
            crate::system::PhaseProfile::default()
        );

        let mut profiled = make();
        profiled.enable_phase_profiling();
        let report = profiled.run();
        let profile = profiled.phase_profile();
        assert!(profile.accounted() > std::time::Duration::ZERO);
        assert!(profile.request_execution > std::time::Duration::ZERO);
        // Profiling is observation only: the simulated results match.
        assert_eq!(report.ops, base.ops);
        assert_eq!(report.waf, base.waf);
        assert_eq!(report.nand_erases, base.nand_erases);
        assert_eq!(report.latency_p99_us, base.latency_p99_us);
    }

    /// A workload with long inter-burst idle gaps: low IOPS, large
    /// bursts, so the engine crosses many consecutive zero-traffic ticks
    /// (the quiescence fast-forward's target regime).
    fn bursty_idle_system(policy: Box<dyn GcPolicy>, secs: u64, seed: u64) -> SsdSystem {
        let config = SystemConfig::small_for_tests();
        let wl_cfg = WorkloadConfig::builder()
            .working_set_pages(config.ftl.user_pages() / 2)
            .duration(SimDuration::from_secs(secs))
            .mean_iops(1.0)
            .burst_mean(600.0)
            .seed(seed)
            .build();
        let workload = BenchmarkKind::Ycsb.build(wl_cfg);
        SsdSystem::new(config, policy, workload)
    }

    #[test]
    fn fast_forward_skips_idle_ticks_and_preserves_the_report() {
        // ~1 IOPS with 600-request bursts → ~10-minute idle gaps, far
        // past the ~(N_wb + CDH window) warm-up the fixed point needs.
        let cfg = SystemConfig::small_for_tests();
        let mut on = bursty_idle_system(Box::new(JitGc::from_system_config(&cfg)), 4_000, 21);
        let mut off = bursty_idle_system(Box::new(JitGc::from_system_config(&cfg)), 4_000, 21);
        off.set_fast_forward(false);
        let report_on = on.run();
        let report_off = off.run();
        assert!(
            on.ticks_skipped() > 50,
            "idle-heavy run skipped only {} ticks in {} spans",
            on.ticks_skipped(),
            on.ff_spans()
        );
        assert!(on.ff_spans() > 0);
        assert_eq!(off.ticks_skipped(), 0, "switch off ⇒ pure per-tick loop");
        assert_eq!(off.ff_spans(), 0);
        // Byte-identical reports across the switch (in this debug build
        // every skipped span was additionally replayed and asserted by
        // the oracle inside `fast_forward_checked`).
        assert_eq!(
            serde_json_like(&report_on),
            serde_json_like(&report_off),
            "fast-forward changed the simulation"
        );
    }

    /// Debug-printable full-report comparison without requiring serde in
    /// the default build.
    fn serde_json_like(report: &SimReport) -> String {
        format!("{report:?}")
    }

    #[test]
    fn fast_forward_handles_all_quiescent_policies() {
        let cfg = SystemConfig::small_for_tests();
        let policies: Vec<Box<dyn GcPolicy>> = vec![
            Box::new(NoBgc),
            Box::new(ReservedCapacity::lazy(cfg.op_capacity())),
            Box::new(adp(&cfg)),
            Box::new(JitGc::from_system_config(&cfg)),
        ];
        for policy in policies {
            let name = policy.name();
            let mut sys = bursty_idle_system(policy, 3_000, 33);
            let _ = sys.run();
            assert!(
                sys.ticks_skipped() > 0,
                "{name}: no ticks skipped on an idle-heavy run"
            );
        }
    }

    #[test]
    fn interval_log_stays_bounded_on_long_runs() {
        // The predicting policy keeps a pending queue, so the log must
        // retain at most ~N_wb scored entries plus the open horizon —
        // never one entry per elapsed tick (satellite: unbounded-growth
        // fix). 2000 s at a 5 s period is 400 ticks; the bound is far
        // below that and independent of run length.
        let cfg = SystemConfig::small_for_tests();
        for (policy, label) in [
            (
                Box::new(JitGc::from_system_config(&cfg)) as Box<dyn GcPolicy>,
                "JIT-GC",
            ),
            (Box::new(NoBgc) as Box<dyn GcPolicy>, "No-BGC"),
        ] {
            let mut sys = bursty_idle_system(policy, 2_000, 7);
            sys.set_fast_forward(false); // worst case: every tick materializes
            let _ = sys.run();
            let bound = 2 * cfg.nwb() + 2;
            assert!(
                sys.interval_log_materialized_len() <= bound,
                "{label}: {} materialized entries > bound {bound}",
                sys.interval_log_materialized_len()
            );
        }
    }

    #[test]
    fn report_duration_covers_the_run() {
        let report = run(Box::new(NoBgc), BenchmarkKind::Bonnie, 12, 8);
        assert!(report.duration_secs >= 11.0, "{}", report.duration_secs);
        // Closed loop: stalls can stretch but never shrink the schedule.
        assert!(report.duration_secs < 60.0);
    }

    #[test]
    fn all_benchmarks_run_under_jit() {
        let cfg = SystemConfig::small_for_tests();
        for kind in BenchmarkKind::all() {
            let report = run(Box::new(JitGc::from_system_config(&cfg)), kind, 15, 11);
            assert!(report.ops > 1_000, "{kind}: ops {}", report.ops);
            let waf = report.waf.expect("host writes happened");
            assert!(waf >= 1.0, "{kind}: waf {waf}");
        }
    }
}
