//! The per-run result record.

use jitgc_nand::WearReport;
use serde::{Deserialize, Serialize};

/// One write-back interval's snapshot, recorded when
/// [`SystemConfig::record_timeline`](crate::system::SystemConfig) is set —
/// the raw material for time-series plots of free space, reserve targets
/// and GC activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalSample {
    /// Interval start, seconds of simulated time.
    pub t_secs: f64,
    /// Device free pages at the interval start (after the flush).
    pub free_pages: u64,
    /// The policy's reserve target in pages.
    pub target_pages: u64,
    /// Host pages written during the interval that just closed.
    pub host_pages_interval: u64,
    /// Cumulative foreground-GC episodes so far.
    pub fgc_cumulative: u64,
    /// Cumulative background-GC blocks so far.
    pub bgc_blocks_cumulative: u64,
    /// Running Write Amplification Factor.
    pub waf: f64,
}

/// Everything one simulation run measured — the raw material for every
/// table and figure in the paper's evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy display name ("L-BGC", "A-BGC", "ADP-GC", "JIT-GC", …).
    pub policy: String,
    /// Workload display name.
    pub workload: String,
    /// Victim-selection policy name.
    pub victim_policy: String,
    /// Simulated run length in seconds.
    pub duration_secs: f64,

    /// Completed host requests.
    pub ops: u64,
    /// Requests per simulated second — the paper's Fig. 2(a)/7(a) metric.
    pub iops: f64,
    /// Read / buffered-write / direct-write / trim request counts.
    pub reads: u64,
    /// Buffered-write requests.
    pub buffered_writes: u64,
    /// Direct-write requests.
    pub direct_writes: u64,
    /// TRIM requests.
    pub trims: u64,

    /// Write Amplification Factor — the paper's Fig. 2(b)/7(b) metric.
    pub waf: f64,
    /// Total NAND block erases (lifetime consumed).
    pub nand_erases: u64,
    /// Wear distribution across blocks.
    pub wear: WearReport,

    /// Host requests that stalled on foreground GC.
    pub fgc_request_stalls: u64,
    /// Foreground-GC episodes triggered by flusher write-back.
    pub fgc_flush_stalls: u64,
    /// Buffered-write requests stalled by Linux dirty throttling
    /// (the writer had to perform write-back synchronously).
    pub throttled_requests: u64,
    /// Blocks reclaimed by background GC.
    pub bgc_blocks: u64,
    /// Pages migrated by GC (foreground + background).
    pub gc_pages_migrated: u64,

    /// Mean request latency in microseconds.
    pub latency_mean_us: u64,
    /// Median request latency in microseconds.
    pub latency_p50_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub latency_p99_us: u64,
    /// 99.9th-percentile request latency in microseconds.
    pub latency_p999_us: u64,
    /// Worst request latency in microseconds.
    pub latency_max_us: u64,

    /// Mean prediction accuracy in percent (paper Table 2), if the policy
    /// predicts.
    pub prediction_accuracy_percent: Option<f64>,
    /// Fraction of BGC victim selections redirected by SIP filtering
    /// (paper Table 3), if a SIP list was ever installed.
    pub sip_filtered_fraction: Option<f64>,

    /// Page-cache read hit ratio.
    pub cache_hit_ratio: Option<f64>,
    /// Pages written to the device by the host (flushes + direct +
    /// forced writebacks).
    pub host_pages_written: u64,
    /// Pages the device programmed in total (host + GC migrations).
    pub nand_pages_programmed: u64,
    /// Per-interval snapshots (empty unless timeline recording was on).
    #[serde(default)]
    pub timeline: Vec<IntervalSample>,
}

impl SimReport {
    /// `IOPS(self) / IOPS(baseline)` — the normalization the paper applies
    /// (all its plots normalize to A-BGC).
    ///
    /// # Panics
    ///
    /// Panics if the baseline measured zero IOPS.
    #[must_use]
    pub fn normalized_iops(&self, baseline: &SimReport) -> f64 {
        assert!(baseline.iops > 0.0, "baseline has zero IOPS");
        self.iops / baseline.iops
    }

    /// `WAF(self) / WAF(baseline)`.
    ///
    /// # Panics
    ///
    /// Panics if the baseline measured zero WAF.
    #[must_use]
    pub fn normalized_waf(&self, baseline: &SimReport) -> f64 {
        assert!(baseline.waf > 0.0, "baseline has zero WAF");
        self.waf / baseline.waf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(iops: f64, waf: f64) -> SimReport {
        SimReport {
            policy: "X".into(),
            workload: "W".into(),
            victim_policy: "greedy".into(),
            duration_secs: 1.0,
            ops: 1,
            iops,
            reads: 0,
            buffered_writes: 0,
            direct_writes: 0,
            trims: 0,
            waf,
            nand_erases: 0,
            wear: WearReport::from_counts([0]),
            fgc_request_stalls: 0,
            fgc_flush_stalls: 0,
            throttled_requests: 0,
            bgc_blocks: 0,
            gc_pages_migrated: 0,
            latency_mean_us: 0,
            latency_p50_us: 0,
            latency_p99_us: 0,
            latency_p999_us: 0,
            latency_max_us: 0,
            prediction_accuracy_percent: None,
            sip_filtered_fraction: None,
            cache_hit_ratio: None,
            host_pages_written: 0,
            nand_pages_programmed: 0,
            timeline: Vec::new(),
        }
    }

    #[test]
    fn normalization() {
        let a = dummy(100.0, 2.0);
        let b = dummy(200.0, 4.0);
        assert_eq!(a.normalized_iops(&b), 0.5);
        assert_eq!(b.normalized_waf(&a), 2.0);
    }

    #[test]
    #[should_panic(expected = "zero IOPS")]
    fn zero_baseline_panics() {
        let a = dummy(100.0, 2.0);
        let z = dummy(0.0, 2.0);
        let _ = a.normalized_iops(&z);
    }

    #[test]
    fn serializes_to_json() {
        let json = serde_json::to_string(&dummy(1.0, 1.0)).expect("serialize");
        assert!(json.contains("\"iops\""));
    }
}
