//! The per-run result record.

use jitgc_nand::WearReport;
use jitgc_sim::json::{JsonValue, ObjectBuilder};

/// One write-back interval's snapshot, recorded when
/// [`SystemConfig::record_timeline`](crate::system::SystemConfig) is set —
/// the raw material for time-series plots of free space, reserve targets
/// and GC activity.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IntervalSample {
    /// Interval start, seconds of simulated time.
    pub t_secs: f64,
    /// Device free pages at the interval start (after the flush).
    pub free_pages: u64,
    /// The policy's reserve target in pages.
    pub target_pages: u64,
    /// Host pages written during the interval that just closed.
    pub host_pages_interval: u64,
    /// Cumulative foreground-GC episodes so far.
    pub fgc_cumulative: u64,
    /// Cumulative background-GC blocks so far.
    pub bgc_blocks_cumulative: u64,
    /// Running Write Amplification Factor.
    pub waf: f64,
}

/// One entry of the device's failure timeline, as recorded in the run
/// report: a block retirement or the final transition to read-only mode.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DegradeEventRecord {
    /// Simulated time of the event, seconds.
    pub t_secs: f64,
    /// `"block_retired"` or `"read_only"`.
    pub kind: String,
    /// The retired block's id (`None` for the read-only transition).
    pub block: Option<u64>,
}

impl DegradeEventRecord {
    /// Serializes one failure-timeline entry.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        ObjectBuilder::new()
            .field("t_secs", self.t_secs)
            .field("kind", self.kind.as_str())
            .field("block", self.block)
            .build()
    }
}

/// End-of-life record for a run in which wear actually bit: injected
/// faults fired, blocks were retired, or the device went read-only. The
/// section is omitted entirely from reports of healthy runs so their
/// output stays byte-identical with pre-fault-model builds.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DegradedReport {
    /// `true` once the device stopped accepting writes.
    pub read_only: bool,
    /// When the read-only transition happened, seconds of simulated time.
    pub read_only_at_secs: Option<f64>,
    /// The lifetime metric (paper Fig. 9's y-axis): host bytes accepted
    /// between the end of pre-fill and the read-only transition. `None`
    /// while the device is still writable.
    pub lifetime_host_bytes: Option<u64>,
    /// Blocks retired as bad.
    pub retired_blocks: u64,
    /// Pages permanently lost to retired blocks.
    pub retired_pages: u64,
    /// Page programs re-issued after an injected program failure.
    pub program_retries: u64,
    /// GC source reads that came back uncorrectable (data relocated raw).
    pub gc_read_failures: u64,
    /// Host reads that came back uncorrectable.
    pub host_read_failures: u64,
    /// Host requests refused after the read-only transition.
    pub rejected_requests: u64,
    /// The failure timeline, in event order.
    pub events: Vec<DegradeEventRecord>,
}

impl DegradedReport {
    /// Serializes the end-of-life section.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let events: Vec<JsonValue> = self
            .events
            .iter()
            .map(DegradeEventRecord::to_json)
            .collect();
        ObjectBuilder::new()
            .field("read_only", self.read_only)
            .field("read_only_at_secs", self.read_only_at_secs)
            .field("lifetime_host_bytes", self.lifetime_host_bytes)
            .field("retired_blocks", self.retired_blocks)
            .field("retired_pages", self.retired_pages)
            .field("program_retries", self.program_retries)
            .field("gc_read_failures", self.gc_read_failures)
            .field("host_read_failures", self.host_read_failures)
            .field("rejected_requests", self.rejected_requests)
            .field("events", JsonValue::Array(events))
            .build()
    }
}

/// Everything one simulation run measured — the raw material for every
/// table and figure in the paper's evaluation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimReport {
    /// Policy display name ("L-BGC", "A-BGC", "ADP-GC", "JIT-GC", …).
    pub policy: String,
    /// Workload display name.
    pub workload: String,
    /// Victim-selection policy name.
    pub victim_policy: String,
    /// Simulated run length in seconds.
    pub duration_secs: f64,

    /// Completed host requests.
    pub ops: u64,
    /// Requests per simulated second — the paper's Fig. 2(a)/7(a) metric.
    pub iops: f64,
    /// Read / buffered-write / direct-write / trim request counts.
    pub reads: u64,
    /// Buffered-write requests.
    pub buffered_writes: u64,
    /// Direct-write requests.
    pub direct_writes: u64,
    /// TRIM requests.
    pub trims: u64,

    /// Write Amplification Factor — the paper's Fig. 2(b)/7(b) metric.
    /// `None` (JSON `null`) when the run performed zero host writes, in
    /// which case the ratio is undefined rather than silently 1.0.
    pub waf: Option<f64>,
    /// Total NAND block erases (lifetime consumed).
    pub nand_erases: u64,
    /// Wear distribution across blocks.
    pub wear: WearReport,

    /// Host requests that stalled on foreground GC.
    pub fgc_request_stalls: u64,
    /// Foreground-GC episodes triggered by flusher write-back.
    pub fgc_flush_stalls: u64,
    /// Buffered-write requests stalled by Linux dirty throttling
    /// (the writer had to perform write-back synchronously).
    pub throttled_requests: u64,
    /// Blocks reclaimed by background GC.
    pub bgc_blocks: u64,
    /// Pages migrated by GC (foreground + background).
    pub gc_pages_migrated: u64,

    /// Mean request latency in microseconds.
    pub latency_mean_us: u64,
    /// Median request latency in microseconds.
    pub latency_p50_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub latency_p99_us: u64,
    /// 99.9th-percentile request latency in microseconds.
    pub latency_p999_us: u64,
    /// Worst request latency in microseconds.
    pub latency_max_us: u64,

    /// Mean prediction accuracy in percent (paper Table 2), if the policy
    /// predicts.
    pub prediction_accuracy_percent: Option<f64>,
    /// Fraction of BGC victim selections redirected by SIP filtering
    /// (paper Table 3), if a SIP list was ever installed.
    pub sip_filtered_fraction: Option<f64>,

    /// Page-cache read hit ratio.
    pub cache_hit_ratio: Option<f64>,
    /// Pages written to the device by the host (flushes + direct +
    /// forced writebacks).
    pub host_pages_written: u64,
    /// Pages the device programmed in total (host + GC migrations).
    pub nand_pages_programmed: u64,
    /// Per-interval snapshots (empty unless timeline recording was on).
    #[cfg_attr(feature = "serde", serde(default))]
    pub timeline: Vec<IntervalSample>,
    /// End-of-life record; `None` for a healthy run (and then absent from
    /// the JSON, keeping fault-free output byte-identical).
    #[cfg_attr(feature = "serde", serde(default))]
    pub degraded: Option<DegradedReport>,
}

impl SimReport {
    /// `IOPS(self) / IOPS(baseline)` — the normalization the paper applies
    /// (all its plots normalize to A-BGC).
    ///
    /// # Panics
    ///
    /// Panics if the baseline measured zero IOPS.
    #[must_use]
    pub fn normalized_iops(&self, baseline: &SimReport) -> f64 {
        assert!(baseline.iops > 0.0, "baseline has zero IOPS");
        self.iops / baseline.iops
    }

    /// `WAF(self) / WAF(baseline)`.
    ///
    /// # Panics
    ///
    /// Panics if either run performed zero host writes (WAF undefined) or
    /// the baseline measured zero WAF.
    #[must_use]
    pub fn normalized_waf(&self, baseline: &SimReport) -> f64 {
        let own = self.waf.expect("WAF undefined: run had no host writes");
        let base = baseline
            .waf
            .expect("baseline WAF undefined: run had no host writes");
        assert!(base > 0.0, "baseline has zero WAF");
        own / base
    }

    /// Serializes the full report to the repository's JSON format
    /// (`ssdsim --json`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let timeline: Vec<JsonValue> = self.timeline.iter().map(IntervalSample::to_json).collect();
        let mut b = ObjectBuilder::new()
            .field("policy", self.policy.as_str())
            .field("workload", self.workload.as_str())
            .field("victim_policy", self.victim_policy.as_str())
            .field("duration_secs", self.duration_secs)
            .field("ops", self.ops)
            .field("iops", self.iops)
            .field("reads", self.reads)
            .field("buffered_writes", self.buffered_writes)
            .field("direct_writes", self.direct_writes)
            .field("trims", self.trims)
            .field("waf", self.waf)
            .field("nand_erases", self.nand_erases)
            .field("wear", self.wear.to_json())
            .field("fgc_request_stalls", self.fgc_request_stalls)
            .field("fgc_flush_stalls", self.fgc_flush_stalls)
            .field("throttled_requests", self.throttled_requests)
            .field("bgc_blocks", self.bgc_blocks)
            .field("gc_pages_migrated", self.gc_pages_migrated)
            .field("latency_mean_us", self.latency_mean_us)
            .field("latency_p50_us", self.latency_p50_us)
            .field("latency_p99_us", self.latency_p99_us)
            .field("latency_p999_us", self.latency_p999_us)
            .field("latency_max_us", self.latency_max_us)
            .field(
                "prediction_accuracy_percent",
                self.prediction_accuracy_percent,
            )
            .field("sip_filtered_fraction", self.sip_filtered_fraction)
            .field("cache_hit_ratio", self.cache_hit_ratio)
            .field("host_pages_written", self.host_pages_written)
            .field("nand_pages_programmed", self.nand_pages_programmed)
            .field("timeline", JsonValue::Array(timeline));
        if let Some(degraded) = &self.degraded {
            b = b.field("degraded", degraded.to_json());
        }
        b.build()
    }
}

impl IntervalSample {
    /// Serializes one timeline sample to the repository's JSON format.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        ObjectBuilder::new()
            .field("t_secs", self.t_secs)
            .field("free_pages", self.free_pages)
            .field("target_pages", self.target_pages)
            .field("host_pages_interval", self.host_pages_interval)
            .field("fgc_cumulative", self.fgc_cumulative)
            .field("bgc_blocks_cumulative", self.bgc_blocks_cumulative)
            .field("waf", self.waf)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(iops: f64, waf: f64) -> SimReport {
        SimReport {
            policy: "X".into(),
            workload: "W".into(),
            victim_policy: "greedy".into(),
            duration_secs: 1.0,
            ops: 1,
            iops,
            reads: 0,
            buffered_writes: 0,
            direct_writes: 0,
            trims: 0,
            waf: Some(waf),
            nand_erases: 0,
            wear: WearReport::from_counts([0]),
            fgc_request_stalls: 0,
            fgc_flush_stalls: 0,
            throttled_requests: 0,
            bgc_blocks: 0,
            gc_pages_migrated: 0,
            latency_mean_us: 0,
            latency_p50_us: 0,
            latency_p99_us: 0,
            latency_p999_us: 0,
            latency_max_us: 0,
            prediction_accuracy_percent: None,
            sip_filtered_fraction: None,
            cache_hit_ratio: None,
            host_pages_written: 0,
            nand_pages_programmed: 0,
            timeline: Vec::new(),
            degraded: None,
        }
    }

    #[test]
    fn normalization() {
        let a = dummy(100.0, 2.0);
        let b = dummy(200.0, 4.0);
        assert_eq!(a.normalized_iops(&b), 0.5);
        assert_eq!(b.normalized_waf(&a), 2.0);
    }

    #[test]
    #[should_panic(expected = "zero IOPS")]
    fn zero_baseline_panics() {
        let a = dummy(100.0, 2.0);
        let z = dummy(0.0, 2.0);
        let _ = a.normalized_iops(&z);
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serializes_to_json() {
        let json = serde_json::to_string(&dummy(1.0, 1.0)).expect("serialize");
        assert!(json.contains("\"iops\""));
    }

    #[test]
    fn json_report_is_parseable_and_faithful() {
        let mut report = dummy(1200.5, 1.25);
        report.ops = u64::MAX;
        report.timeline.push(IntervalSample {
            t_secs: 1.0,
            free_pages: 10,
            target_pages: 20,
            host_pages_interval: 5,
            fgc_cumulative: 0,
            bgc_blocks_cumulative: 2,
            waf: 1.5,
        });
        let v = JsonValue::parse(&report.to_json().to_pretty()).expect("reparse");
        assert_eq!(v.get("ops").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("iops").unwrap().as_f64(), Some(1200.5));
        assert!(v.get("prediction_accuracy_percent").unwrap().is_null());
        let samples = v.get("timeline").unwrap().as_array().unwrap();
        assert_eq!(
            samples[0].get("bgc_blocks_cumulative").unwrap().as_u64(),
            Some(2)
        );
    }
}
