//! The full-system simulation engine.
//!
//! Wires the substrate together — workload → page cache → FTL → NAND —
//! with the paper's host/device split: every flusher period `p` the engine
//! (acting as the host kernel) runs the flusher, the two predictors, and
//! the installed [`GcPolicy`](crate::policy::GcPolicy), then lets
//! background GC reclaim toward the policy's target **during device idle
//! time only**.
//!
//! The request loop is a paced closed loop: each request is issued at the
//! later of its think-time schedule and the previous request's completion,
//! so foreground-GC stalls propagate into IOPS exactly as on a real
//! system.

mod config;
mod engine;
mod interval_log;
mod profile;
mod report;

pub use config::{ManagerPlacement, SystemConfig, VictimKind};
pub use engine::{GcSignals, SsdSystem};
pub use profile::PhaseProfile;
pub use report::{DegradeEventRecord, DegradedReport, IntervalSample, SimReport};
