//! Bounded-memory per-interval traffic log.
//!
//! The engine records one device-traffic entry per flusher tick so that
//! horizon predictions can be scored over their full `N_wb` windows.
//! Storing that as a plain `Vec<u64>` grows one entry per tick forever —
//! an endurance run to end-of-life at a 500 ms period accumulates
//! millions of entries that are never read again once the predictions
//! covering them have been scored.
//!
//! [`IntervalLog`] keeps the same logical sequence addressable by the
//! same indices while storing only what can still matter:
//!
//! * a **base offset** — entries below it were already consumed by
//!   scoring and are gone ([`compact`](IntervalLog::compact) advances it);
//! * a short **materialized window** of explicit values;
//! * a **run-length-encoded zero tail** — idle intervals are all-zero,
//!   and the quiescence fast-forward appends them in O(1) via
//!   [`append_zeros`](IntervalLog::append_zeros) without materializing
//!   anything.
//!
//! Pushing a zero always lands in the RLE tail and pushing a non-zero
//! value first materializes the tail, so the representation is a pure
//! function of the logical content (given the same compaction calls) —
//! the per-tick path and the fast-forward bulk path converge on
//! identical structures, which lets the debug replay oracle compare them
//! with plain `==`.

/// The per-interval device-traffic log: logically `Vec<u64>` with one
/// entry per elapsed flusher tick, physically a compacted window plus a
/// run-length-encoded zero tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct IntervalLog {
    /// Logical index of `vals[0]`; everything below was compacted away.
    base: usize,
    /// Explicit values for logical indices `[base, base + vals.len())`.
    vals: Vec<u64>,
    /// Trailing zeros for `[base + vals.len(), len())`, stored as a count.
    tail_zeros: usize,
}

impl IntervalLog {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Logical length: total intervals ever recorded.
    pub(crate) fn len(&self) -> usize {
        self.base + self.vals.len() + self.tail_zeros
    }

    /// Appends one interval's traffic.
    pub(crate) fn push(&mut self, value: u64) {
        if value == 0 {
            // Zeros always extend the RLE tail, so an idle stretch costs
            // no memory whether it arrives tick-by-tick or in bulk.
            self.tail_zeros += 1;
        } else {
            self.materialize_tail();
            self.vals.push(value);
        }
    }

    /// Appends `n` zero intervals in O(1) — the fast-forward bulk path.
    pub(crate) fn append_zeros(&mut self, n: usize) {
        self.tail_zeros += n;
    }

    /// Sum of the logical entries in `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start < base` (the range was compacted away — the
    /// caller's compaction floor was wrong) or `end > len()`.
    pub(crate) fn sum_range(&self, start: usize, end: usize) -> u64 {
        assert!(
            start >= self.base,
            "interval log range [{start}, {end}) reaches below base {}",
            self.base
        );
        assert!(end <= self.len(), "interval log range end {end} > len");
        let stored_end = self.base + self.vals.len();
        // Entries at or past `stored_end` are RLE zeros: they contribute
        // nothing, so only the overlap with the materialized window sums.
        let lo = start.min(stored_end) - self.base;
        let hi = end.min(stored_end) - self.base;
        self.vals[lo..hi].iter().sum()
    }

    /// Drops every entry below logical index `floor` (typically the
    /// oldest still-pending prediction's start). Keeps `len()` and all
    /// indices `>= floor` intact.
    pub(crate) fn compact(&mut self, floor: usize) {
        if floor <= self.base {
            return;
        }
        let stored_end = self.base + self.vals.len();
        if floor >= stored_end {
            // The whole materialized window is dead; what survives of the
            // tail stays run-length encoded.
            self.tail_zeros = self.len() - floor;
            self.vals.clear();
        } else {
            self.vals.drain(..floor - self.base);
        }
        self.base = floor;
    }

    /// Explicitly stored entries — the quantity the boundedness
    /// regression test asserts on (logical `len()` keeps growing; this
    /// must not).
    pub(crate) fn materialized_len(&self) -> usize {
        self.vals.len()
    }

    fn materialize_tail(&mut self) {
        if self.tail_zeros > 0 {
            self.vals.resize(self.vals.len() + self.tail_zeros, 0);
            self.tail_zeros = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: the plain Vec the log replaces.
    fn check_against_model(log: &IntervalLog, model: &[u64], base: usize) {
        assert_eq!(log.len(), model.len());
        for start in base..model.len() {
            for end in start..=model.len() {
                assert_eq!(
                    log.sum_range(start, end),
                    model[start..end].iter().sum::<u64>(),
                    "sum_range({start}, {end})"
                );
            }
        }
    }

    #[test]
    fn behaves_like_a_vec_before_compaction() {
        let mut log = IntervalLog::new();
        let model = [5u64, 0, 0, 7, 0, 3, 0, 0, 0];
        for &v in &model {
            log.push(v);
        }
        check_against_model(&log, &model, 0);
    }

    #[test]
    fn zeros_extend_the_rle_tail_without_memory() {
        let mut log = IntervalLog::new();
        log.push(4);
        for _ in 0..1_000_000 {
            log.push(0);
        }
        assert_eq!(log.len(), 1_000_001);
        assert_eq!(log.materialized_len(), 1);
        assert_eq!(log.sum_range(0, 1_000_001), 4);
        assert_eq!(log.sum_range(500, 600), 0);
    }

    #[test]
    fn append_zeros_matches_pushing_zeros() {
        let mut bulk = IntervalLog::new();
        let mut looped = IntervalLog::new();
        for log in [&mut bulk, &mut looped] {
            log.push(9);
            log.push(0);
        }
        bulk.append_zeros(5);
        for _ in 0..5 {
            looped.push(0);
        }
        assert_eq!(bulk, looped);
    }

    #[test]
    fn nonzero_push_materializes_the_tail() {
        let mut log = IntervalLog::new();
        log.push(0);
        log.push(0);
        log.push(8);
        let model = [0u64, 0, 8];
        check_against_model(&log, &model, 0);
        assert_eq!(log.materialized_len(), 3);
    }

    #[test]
    fn compaction_preserves_surviving_indices() {
        let mut log = IntervalLog::new();
        let model = [2u64, 4, 0, 6, 0, 0, 1, 0];
        for &v in &model {
            log.push(v);
        }
        log.compact(3);
        assert_eq!(log.len(), model.len());
        check_against_model(&log, &model, 3);
        // Compacting backwards is a no-op, not a panic.
        log.compact(1);
        check_against_model(&log, &model, 3);
    }

    #[test]
    fn compaction_into_the_zero_tail_keeps_it_encoded() {
        let mut log = IntervalLog::new();
        log.push(5);
        log.append_zeros(100);
        log.compact(40);
        assert_eq!(log.len(), 101);
        assert_eq!(log.materialized_len(), 0);
        assert_eq!(log.sum_range(40, 101), 0);
    }

    #[test]
    fn compact_to_len_empties_storage() {
        let mut log = IntervalLog::new();
        for v in [1u64, 2, 3] {
            log.push(v);
        }
        log.compact(log.len());
        assert_eq!(log.len(), 3);
        assert_eq!(log.materialized_len(), 0);
        log.push(7);
        assert_eq!(log.sum_range(3, 4), 7);
    }

    #[test]
    #[should_panic(expected = "below base")]
    fn reading_a_compacted_range_panics() {
        let mut log = IntervalLog::new();
        for v in [1u64, 2, 3, 4] {
            log.push(v);
        }
        log.compact(2);
        let _ = log.sum_range(1, 3);
    }
}
