//! Wall-clock phase profiling for the simulation engine.

use std::time::Duration;

/// Wall-clock (host) time the engine spent in each simulator phase.
///
/// Collected only when [`SsdSystem::enable_phase_profiling`] was called,
/// so the timing probes stay off the hot path by default. The breakdown
/// is *simulator* cost — where the CPU time of a run goes — not simulated
/// device time, and it never feeds back into simulation results: enabling
/// profiling cannot change a report.
///
/// [`SsdSystem::enable_phase_profiling`]: crate::system::SsdSystem::enable_phase_profiling
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Executing host I/O requests (cache probes + FTL reads/writes).
    pub request_execution: Duration,
    /// Flusher write-back at each tick.
    pub flush: Duration,
    /// Predictor polls: buffered + direct demand, SIP build and install.
    pub predictor: Duration,
    /// Background GC during device idle gaps.
    pub bgc: Duration,
    /// Final report construction.
    pub reporting: Duration,
    /// Full-block GC copy work inside the FTL (foreground collections and
    /// wear-leveling relocations). **Sub-phase**: this time is already
    /// contained in `request_execution`/`flush`/`bgc`, so it is excluded
    /// from [`accounted`](Self::accounted); it isolates the cost the
    /// batched `copy_pages` migration path attacks.
    pub gc_copy: Duration,
    /// The whole periodic-catch-up step: every tick processed (or
    /// fast-forwarded) between requests, including the quiescence check.
    /// **Super-phase**: it contains `flush`, `predictor` and the tick-time
    /// share of `bgc`, so it is excluded from
    /// [`accounted`](Self::accounted); it isolates the per-tick overhead
    /// the quiescence fast-forward attacks.
    pub tick: Duration,
}

impl PhaseProfile {
    /// Total time attributed to a phase (the remainder up to the run's
    /// wall time is untracked glue: workload generation, scheduling).
    /// `gc_copy` (sub-phase) and `tick` (super-phase) overlap the
    /// top-level phases and are not summed.
    #[must_use]
    pub fn accounted(&self) -> Duration {
        self.request_execution + self.flush + self.predictor + self.bgc + self.reporting
    }
}
