//! System-level configuration.

use jitgc_ftl::{
    CostBenefitSelector, FifoSelector, FtlConfig, GreedySelector, RandomSelector, VictimSelector,
};
use jitgc_pagecache::PageCacheConfig;
use jitgc_sim::json::{JsonError, JsonValue, ObjectBuilder};
use jitgc_sim::{ByteSize, SimDuration};

/// Where the JIT-GC manager runs (paper Fig. 3).
///
/// The paper's *ideal* implementation (Fig. 3(a)) executes the manager in
/// the SSD controller, so only predictor output crosses the host
/// interface. Practical constraints forced the *actual* implementation
/// (Fig. 3(b)) to run the manager in the host and drive the SSD with
/// explicit commands over `SG_IO`, paying ~160 µs per exchange. The
/// placement changes only that interface cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ManagerPlacement {
    /// Fig. 3(b): manager in the host kernel; each tick pays the
    /// configured per-command overhead for the demand/SIP/C_free/BGC
    /// exchanges. This is the paper's measured configuration and the
    /// default.
    Host,
    /// Fig. 3(a): manager inside the SSD controller; no interface cost.
    Device,
}

/// Which victim-selection policy the FTL uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum VictimKind {
    /// Fewest valid pages first (default).
    Greedy,
    /// Age-weighted cost-benefit.
    CostBenefit,
    /// Least recently written.
    Fifo,
    /// Uniform random with the given seed (worst-case baseline).
    Random(u64),
}

impl VictimKind {
    /// Instantiates the selector.
    #[must_use]
    pub fn build(self) -> Box<dyn VictimSelector> {
        match self {
            VictimKind::Greedy => Box::new(GreedySelector),
            VictimKind::CostBenefit => Box::new(CostBenefitSelector),
            VictimKind::Fifo => Box::new(FifoSelector),
            VictimKind::Random(seed) => Box::new(RandomSelector::new(seed)),
        }
    }

    /// Serializes to the repository's JSON config format.
    #[must_use]
    pub fn to_json(self) -> JsonValue {
        match self {
            VictimKind::Greedy => JsonValue::from("greedy"),
            VictimKind::CostBenefit => JsonValue::from("cost-benefit"),
            VictimKind::Fifo => JsonValue::from("fifo"),
            VictimKind::Random(seed) => ObjectBuilder::new()
                .field("random", JsonValue::U64(seed))
                .build(),
        }
    }

    /// Parses the format written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for unknown policy names.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        if let Some(name) = v.as_str() {
            return match name {
                "greedy" => Ok(VictimKind::Greedy),
                "cost-benefit" => Ok(VictimKind::CostBenefit),
                "fifo" => Ok(VictimKind::Fifo),
                other => Err(JsonError::new(format!("unknown victim policy `{other}`"))),
            };
        }
        let seed = v
            .req("random")?
            .as_u64()
            .ok_or_else(|| JsonError::new("`random` seed must be an integer"))?;
        Ok(VictimKind::Random(seed))
    }
}

/// Full configuration of an [`SsdSystem`](crate::system::SsdSystem).
///
/// Serializable, so whole experiment setups can be stored and replayed
/// (`ssdsim --config setup.json`).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemConfig {
    /// FTL / device configuration.
    pub ftl: FtlConfig,
    /// Page cache configuration (its `τ_expire` is the prediction horizon).
    pub cache: PageCacheConfig,
    /// Flusher-thread period `p` (paper default 5 s).
    pub flusher_period: SimDuration,
    /// Host-side time for a page-cache hit or absorbed buffered write.
    pub cache_op_time: SimDuration,
    /// Per-command overhead of the extended host interface (the paper
    /// measured 160 µs per SG_IO exchange).
    pub host_command_overhead: SimDuration,
    /// CDH coverage target for the direct-write predictor (paper: 0.8).
    pub cdh_percentile: f64,
    /// CDH bin width in bytes.
    pub cdh_bin_bytes: u64,
    /// Victim-selection policy.
    pub victim: VictimKind,
    /// Where the JIT-GC manager runs (paper Fig. 3); determines whether
    /// ticks pay the host-interface overhead.
    pub manager_placement: ManagerPlacement,
    /// Number of concurrent application threads (closed-loop streams).
    /// Requests are dealt round-robin; each thread issues its next request
    /// a think-time after its own previous completion, all sharing the one
    /// device queue. Higher depths raise utilization and make every
    /// foreground-GC stall block more work.
    pub queue_depth: u32,
    /// Use the strict `τ_flush` model in the buffered predictor
    /// (ablation; the paper relaxes it).
    pub strict_tau_flush: bool,
    /// Run static wear leveling during ticks (extension beyond the paper).
    pub wear_leveling: bool,
    /// Age the device before measuring: write the workload's whole working
    /// set once (in scrambled order) and reset counters. A 2015-era SSD
    /// without TRIM converges to this state — every LBA ever written stays
    /// valid — and it is what makes `C_resv` sizing matter.
    pub prefill: bool,
    /// Record one [`IntervalSample`](crate::system::IntervalSample) per
    /// write-back interval into the report's `timeline` (costs memory
    /// proportional to the run length; off by default).
    pub record_timeline: bool,
}

impl SystemConfig {
    /// A small configuration for unit/integration tests: 2 048 user pages
    /// (8 MiB at 4 KiB), 7 % OP, 64-page blocks, 512-page cache.
    #[must_use]
    pub fn small_for_tests() -> Self {
        let ftl = FtlConfig::builder()
            .user_pages(2_048)
            .op_permille(70)
            .pages_per_block(64)
            .page_size_bytes(4_096)
            .gc_reserve_blocks(2)
            .build();
        let cache = PageCacheConfig::builder()
            .capacity_pages(2_048)
            .tau_expire(SimDuration::from_secs(30))
            .tau_flush_permille(250)
            .flusher_period(SimDuration::from_secs(5))
            .build();
        SystemConfig {
            ftl,
            cache,
            flusher_period: SimDuration::from_secs(5),
            cache_op_time: SimDuration::from_micros(2),
            host_command_overhead: SimDuration::from_micros(160),
            cdh_percentile: 0.8,
            cdh_bin_bytes: 64 * 1024,
            victim: VictimKind::Greedy,
            manager_placement: ManagerPlacement::Host,
            queue_depth: 1,
            strict_tau_flush: false,
            wear_leveling: false,
            prefill: false,
            record_timeline: false,
        }
    }

    /// The benchmark-scale configuration used by the experiment harness:
    /// 24 576 user pages (96 MiB at 4 KiB), 7 % OP like the SM843T,
    /// 128-page blocks, 8 192-page cache.
    ///
    /// **Scale model.** The device is ~2 500× smaller than the paper's
    /// 240 GB SM843T but just as fast, so the host-side write-back
    /// constants are scaled by 5× to preserve the paper's governing
    /// ratios: `p = 1 s`, `τ_expire = 6 s` (`N_wb = 6` exactly as with the
    /// paper's 5 s/30 s), keeping one write-back window's worth of write
    /// traffic small relative to `C_OP` — on the SM843T a 30 s window is
    /// ~10 % of `C_OP`; at simulator scale a 3 s window preserves that
    /// relationship. DESIGN.md documents this substitution.
    #[must_use]
    pub fn default_sim() -> Self {
        let ftl = FtlConfig::builder()
            .user_pages(24_576)
            .op_permille(70)
            .pages_per_block(128)
            .page_size_bytes(4_096)
            .gc_reserve_blocks(2)
            .build();
        let cache = PageCacheConfig::builder()
            .capacity_pages(8_192)
            .tau_expire(SimDuration::from_secs(3))
            .tau_flush_permille(100)
            .flusher_period(SimDuration::from_millis(500))
            .build();
        SystemConfig {
            ftl,
            cache,
            flusher_period: SimDuration::from_millis(500),
            cache_op_time: SimDuration::from_micros(2),
            host_command_overhead: SimDuration::from_micros(160),
            cdh_percentile: 0.8,
            cdh_bin_bytes: 256 * 1024,
            victim: VictimKind::Greedy,
            manager_placement: ManagerPlacement::Host,
            queue_depth: 1,
            strict_tau_flush: false,
            wear_leveling: false,
            prefill: true,
            record_timeline: false,
        }
    }

    /// The prediction horizon `τ_expire` (taken from the cache config).
    #[must_use]
    pub fn tau_expire(&self) -> SimDuration {
        self.cache.tau_expire()
    }

    /// The horizon in intervals, `N_wb = τ_expire / p`.
    #[must_use]
    pub fn nwb(&self) -> usize {
        self.tau_expire().div_duration(self.flusher_period) as usize
    }

    /// The mean host-side dwell time of a buffered write before the
    /// flusher pushes it to the device, in seconds. A dirty page expires
    /// after `τ_expire` and is picked up by the next flusher pass, so a
    /// write arriving at a uniformly random phase waits
    /// `τ_expire + p/2` on average. Overwrites landing inside this window
    /// coalesce in the cache — the write-absorption term of the
    /// mean-field model (`jitgc-model`).
    #[must_use]
    pub fn write_back_window(&self) -> f64 {
        self.tau_expire().as_secs_f64() + self.flusher_period.as_secs_f64() / 2.0
    }

    /// Initial `(B_w, B_gc)` bandwidth estimates in bytes/second, derived
    /// from the NAND timing model: `B_w` is the sustained program
    /// bandwidth; `B_gc` assumes half-valid victims (each reclaimed page
    /// costs one migration plus its share of the erase).
    #[must_use]
    pub fn default_bandwidths(&self) -> (f64, f64) {
        let timing = self.ftl.timing();
        let page = self.ftl.geometry().page_size();
        let bw = timing.program_bandwidth(page);
        let ppb = u64::from(self.ftl.geometry().pages_per_block());
        let freed = (ppb / 2).max(1);
        let gc_time =
            timing.page_migrate_cost().saturating_mul(ppb / 2) + timing.block_erase_cost();
        let gc_bw = (page.as_u64() * freed) as f64 / gc_time.as_secs_f64();
        (bw, gc_bw)
    }

    /// The user capacity `C_user` in bytes.
    #[must_use]
    pub fn user_capacity(&self) -> ByteSize {
        self.ftl.user_capacity()
    }

    /// The over-provisioning capacity `C_OP` in bytes.
    #[must_use]
    pub fn op_capacity(&self) -> ByteSize {
        self.ftl.op_capacity()
    }

    /// Serializes to the repository's JSON config format
    /// (`ssdsim --dump-config`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        ObjectBuilder::new()
            .field("ftl", self.ftl.to_json())
            .field("cache", self.cache.to_json())
            .field("flusher_period_us", self.flusher_period.as_micros())
            .field("cache_op_time_us", self.cache_op_time.as_micros())
            .field(
                "host_command_overhead_us",
                self.host_command_overhead.as_micros(),
            )
            .field("cdh_percentile", self.cdh_percentile)
            .field("cdh_bin_bytes", self.cdh_bin_bytes)
            .field("victim", self.victim.to_json())
            .field(
                "manager_placement",
                match self.manager_placement {
                    ManagerPlacement::Host => "host",
                    ManagerPlacement::Device => "device",
                },
            )
            .field("queue_depth", self.queue_depth)
            .field("strict_tau_flush", self.strict_tau_flush)
            .field("wear_leveling", self.wear_leveling)
            .field("prefill", self.prefill)
            .field("record_timeline", self.record_timeline)
            .build()
    }

    /// Parses the format written by [`to_json`](Self::to_json)
    /// (`ssdsim --config`).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let micros = |key: &str| -> Result<SimDuration, JsonError> {
            v.req(key)?
                .as_u64()
                .map(SimDuration::from_micros)
                .ok_or_else(|| JsonError::new(format!("`{key}` must be an integer")))
        };
        let bool_field = |key: &str| -> Result<bool, JsonError> {
            v.req(key)?
                .as_bool()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a bool")))
        };
        let manager_placement = match v.req("manager_placement")?.as_str() {
            Some("host") => ManagerPlacement::Host,
            Some("device") => ManagerPlacement::Device,
            _ => return Err(JsonError::new("`manager_placement` must be host|device")),
        };
        Ok(SystemConfig {
            ftl: FtlConfig::from_json(v.req("ftl")?)?,
            cache: PageCacheConfig::from_json(v.req("cache")?)?,
            flusher_period: micros("flusher_period_us")?,
            cache_op_time: micros("cache_op_time_us")?,
            host_command_overhead: micros("host_command_overhead_us")?,
            cdh_percentile: v
                .req("cdh_percentile")?
                .as_f64()
                .ok_or_else(|| JsonError::new("`cdh_percentile` must be a number"))?,
            cdh_bin_bytes: v
                .req("cdh_bin_bytes")?
                .as_u64()
                .ok_or_else(|| JsonError::new("`cdh_bin_bytes` must be an integer"))?,
            victim: VictimKind::from_json(v.req("victim")?)?,
            manager_placement,
            queue_depth: v
                .req("queue_depth")?
                .as_u64()
                .and_then(|q| u32::try_from(q).ok())
                .ok_or_else(|| JsonError::new("`queue_depth` must be an integer"))?,
            strict_tau_flush: bool_field("strict_tau_flush")?,
            wear_leveling: bool_field("wear_leveling")?,
            prefill: bool_field("prefill")?,
            record_timeline: bool_field("record_timeline")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_coherent() {
        for cfg in [SystemConfig::small_for_tests(), SystemConfig::default_sim()] {
            assert_eq!(cfg.nwb(), 6);
            assert!(cfg.op_capacity() < cfg.user_capacity());
            let (bw, gc_bw) = cfg.default_bandwidths();
            assert!(bw > 0.0 && gc_bw > 0.0);
            assert!(gc_bw < bw, "GC reclaims slower than plain writes");
        }
    }

    #[test]
    fn victim_kinds_build() {
        for kind in [
            VictimKind::Greedy,
            VictimKind::CostBenefit,
            VictimKind::Fifo,
            VictimKind::Random(1),
        ] {
            let sel = kind.build();
            assert!(!sel.name().is_empty());
        }
    }

    #[test]
    fn json_round_trips() {
        let mut cfg = SystemConfig::default_sim();
        cfg.victim = VictimKind::Random(99);
        cfg.manager_placement = ManagerPlacement::Device;
        cfg.queue_depth = 4;
        cfg.strict_tau_flush = true;
        let back = SystemConfig::from_json(&cfg.to_json()).expect("parse");
        assert_eq!(back.ftl.user_pages(), cfg.ftl.user_pages());
        assert_eq!(back.ftl.geometry(), cfg.ftl.geometry());
        assert_eq!(back.cache, cfg.cache);
        assert_eq!(back.flusher_period, cfg.flusher_period);
        assert_eq!(back.victim, cfg.victim);
        assert_eq!(back.manager_placement, cfg.manager_placement);
        assert_eq!(back.queue_depth, cfg.queue_depth);
        assert_eq!(back.strict_tau_flush, cfg.strict_tau_flush);
        assert_eq!(back.prefill, cfg.prefill);
        // Text form round-trips through the parser too.
        let reparsed = jitgc_sim::json::JsonValue::parse(&cfg.to_json().to_pretty()).unwrap();
        assert_eq!(
            SystemConfig::from_json(&reparsed).unwrap().cdh_bin_bytes,
            cfg.cdh_bin_bytes
        );
    }

    #[test]
    fn victim_kind_json_forms() {
        for kind in [
            VictimKind::Greedy,
            VictimKind::CostBenefit,
            VictimKind::Fifo,
            VictimKind::Random(7),
        ] {
            assert_eq!(VictimKind::from_json(&kind.to_json()).unwrap(), kind);
        }
        assert!(VictimKind::from_json(&JsonValue::from("lru")).is_err());
    }

    #[test]
    fn tau_expire_comes_from_cache() {
        let cfg = SystemConfig::small_for_tests();
        assert_eq!(cfg.tau_expire(), cfg.cache.tau_expire());
    }
}
