//! The future write demand predictor (paper Sec. 3.2).
//!
//! Two sub-predictors cover the two write paths:
//!
//! * [`BufferedWritePredictor`] — deterministic: the page cache's flush
//!   rules are known, so scanning dirty-page ages yields a per-interval
//!   upper bound on flush traffic plus the SIP list.
//! * [`DirectWritePredictor`] — statistical: direct writes bypass the
//!   cache, so only their historical volume (the CDH) is available.
//!
//! [`AccuracyTracker`] scores any predictor's next-interval estimates
//! against observed traffic, reproducing the paper's Table 2 metric.

mod accuracy;
mod buffered;
mod direct;

pub use accuracy::AccuracyTracker;
pub use buffered::{BufferedDemand, BufferedWritePredictor};
pub use direct::{DirectDemand, DirectWritePredictor};
