//! The direct-write demand predictor (paper Sec. 3.2.2).

use jitgc_sim::stats::Cdh;
use jitgc_sim::SimDuration;
use std::collections::VecDeque;

/// The sequence `D_dir(t) = (D¹_dir, …, D^Nwb_dir)` of per-interval direct
/// write demands, in bytes. The paper spreads the reservation `δ_dir`
/// evenly: `D^i_dir = δ_dir / N_wb`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DirectDemand {
    per_interval_bytes: u64,
    nwb: usize,
}

impl DirectDemand {
    /// `D^i_dir` in bytes (same for every `i`).
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.per_interval_bytes
    }

    /// Total reserved capacity `δ_dir ≈ Σᵢ D^i_dir`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_interval_bytes * self.nwb as u64
    }

    /// Number of intervals `N_wb`.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.nwb
    }

    /// The demand as a per-interval slice-like vector (for summation with
    /// a [`BufferedDemand`](crate::predictor::BufferedDemand)).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u64> {
        vec![self.per_interval_bytes; self.nwb]
    }
}

/// Predicts direct-write demand from the cumulative data histogram of past
/// `τ_expire`-second windows (paper Sec. 3.2.2, Fig. 5).
///
/// The predictor is fed the direct-write byte count of each write-back
/// interval (`p` seconds); every interval it slides a `N_wb`-interval
/// window over those counts and records the window total in the CDH. The
/// reservation `δ_dir` is the CDH value covering `percentile` of past
/// windows — the paper found **80 %** the sweet spot: higher percentiles
/// avoid more foreground GC but over-reserve like an aggressive policy.
///
/// # Example
///
/// Reproduces the paper's Fig. 5 numbers:
///
/// ```
/// use jitgc_core::predictor::DirectWritePredictor;
/// use jitgc_sim::SimDuration;
///
/// let mib = 1024 * 1024;
/// let mut pred = DirectWritePredictor::new(
///     SimDuration::from_secs(5),
///     SimDuration::from_secs(30),
///     0.8,
///     10 * mib,
/// );
/// for window_mib in [10u64, 20, 20, 20, 80] {
///     pred.observe_window_total(window_mib * mib);
/// }
/// let demand = pred.predict();
/// assert_eq!(demand.interval(), 20 * mib / 6); // δ_dir spread over N_wb
/// ```
#[derive(Debug, Clone)]
pub struct DirectWritePredictor {
    nwb: usize,
    percentile: f64,
    cdh: Cdh,
    recent_intervals: VecDeque<u64>,
}

/// How many windows the CDH retains. Old enough to smooth noise, young
/// enough to adapt to phase changes (Bonnie++'s regime switches).
const CDH_WINDOW: usize = 64;

impl DirectWritePredictor {
    /// Creates a predictor.
    ///
    /// * `p` — flusher period.
    /// * `tau_expire` — prediction horizon (`N_wb = τ_expire / p`).
    /// * `percentile` — CDH coverage target in `(0, 1]`; the paper uses 0.8.
    /// * `bin_bytes` — CDH bin width (the paper's Fig. 5 uses 10 MB).
    ///
    /// # Panics
    ///
    /// Panics if `tau_expire` is not a positive multiple of `p`, the
    /// percentile is outside `(0, 1]`, or `bin_bytes` is zero.
    #[must_use]
    pub fn new(p: SimDuration, tau_expire: SimDuration, percentile: f64, bin_bytes: u64) -> Self {
        assert!(!p.is_zero(), "flusher period must be non-zero");
        assert!(
            !tau_expire.is_zero() && tau_expire.as_micros().is_multiple_of(p.as_micros()),
            "tau_expire must be a positive multiple of the flusher period"
        );
        assert!(
            percentile > 0.0 && percentile <= 1.0,
            "percentile must be in (0, 1], got {percentile}"
        );
        let nwb = tau_expire.div_duration(p) as usize;
        DirectWritePredictor {
            nwb,
            percentile,
            cdh: Cdh::new(bin_bytes, CDH_WINDOW),
            recent_intervals: VecDeque::with_capacity(nwb),
        }
    }

    /// The prediction horizon `N_wb`.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.nwb
    }

    /// The configured CDH percentile.
    #[must_use]
    pub fn percentile(&self) -> f64 {
        self.percentile
    }

    /// Feeds the direct-write byte count of the just-finished write-back
    /// interval; once `N_wb` intervals have accumulated, each call also
    /// records the sliding `τ_expire`-window total into the CDH.
    pub fn observe_interval(&mut self, direct_bytes: u64) {
        self.recent_intervals.push_back(direct_bytes);
        if self.recent_intervals.len() > self.nwb {
            self.recent_intervals.pop_front();
        }
        if self.recent_intervals.len() == self.nwb {
            let window_total: u64 = self.recent_intervals.iter().sum();
            self.cdh.observe(window_total);
        }
    }

    /// Directly records a whole `τ_expire`-window total (used when the
    /// caller aggregates windows itself, e.g. the paper's Fig. 5 example).
    pub fn observe_window_total(&mut self, window_bytes: u64) {
        self.cdh.observe(window_bytes);
    }

    /// `true` when [`observe_interval`](Self::observe_interval)`(0)` would
    /// map this predictor exactly onto itself: the recent-interval ring
    /// holds a full horizon of zeros (push 0 / pop 0) *and* the CDH's
    /// sliding window is saturated with zero window-totals (evict 0 /
    /// record 0). The quiescence fast-forward uses this to skip the
    /// per-tick poll across idle spans; the check is an O(window) scan
    /// paid only when a skip is already plausible.
    #[must_use]
    pub fn at_zero_traffic_fixed_point(&self) -> bool {
        self.recent_intervals.len() == self.nwb
            && self.recent_intervals.iter().all(|&b| b == 0)
            && self.cdh.window_full_of(0)
    }

    /// The current demand estimate: `δ_dir` from the CDH at the configured
    /// percentile, spread evenly over the horizon. Before any observation
    /// the demand is zero (nothing to reserve for).
    #[must_use]
    pub fn predict(&self) -> DirectDemand {
        let delta = self.cdh.reserve_for(self.percentile).unwrap_or(0);
        DirectDemand {
            per_interval_bytes: delta / self.nwb as u64,
            nwb: self.nwb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    fn predictor(percentile: f64) -> DirectWritePredictor {
        DirectWritePredictor::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(30),
            percentile,
            10 * MIB,
        )
    }

    /// The paper's Fig. 5: windows of 10, 20, 20, 20, 80 MB → reserving
    /// 20 MB covers 80 % of windows.
    #[test]
    fn paper_fig5_example() {
        let mut pred = predictor(0.8);
        for mib in [10u64, 20, 20, 20, 80] {
            pred.observe_window_total(mib * MIB);
        }
        let demand = pred.predict();
        assert_eq!(demand.interval(), 20 * MIB / 6);
        assert_eq!(demand.total(), (20 * MIB / 6) * 6);
        // Covering 100 % needs the 80 MB outlier.
        let mut pred_hi = predictor(1.0);
        for mib in [10u64, 20, 20, 20, 80] {
            pred_hi.observe_window_total(mib * MIB);
        }
        assert_eq!(pred_hi.predict().total(), (80 * MIB / 6) * 6);
    }

    #[test]
    fn no_observations_predict_zero() {
        let pred = predictor(0.8);
        assert_eq!(pred.predict().total(), 0);
        assert_eq!(pred.predict().horizon(), 6);
    }

    #[test]
    fn interval_observations_form_sliding_windows() {
        // 1-MiB bins so window totals are not quantized up to a bin edge.
        let mut pred = DirectWritePredictor::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(30),
            1.0,
            MIB,
        );
        // Six intervals of 1 MiB → first window total 6 MiB.
        for _ in 0..6 {
            pred.observe_interval(MIB);
        }
        assert_eq!(pred.predict().total() / MIB, 6);
        // A huge seventh interval slides in: window = 5×1 + 35 = 40 MiB.
        pred.observe_interval(35 * MIB);
        let demand = pred.predict();
        assert_eq!(demand.interval(), 40 * MIB / 6);
    }

    #[test]
    fn fewer_than_horizon_intervals_do_not_observe() {
        let mut pred = predictor(0.8);
        for _ in 0..5 {
            pred.observe_interval(10 * MIB);
        }
        assert_eq!(pred.predict().total(), 0, "window not yet complete");
    }

    #[test]
    fn higher_percentile_reserves_no_less() {
        let mut lo = predictor(0.6);
        let mut hi = predictor(0.95);
        for mib in [5u64, 10, 15, 20, 25, 30, 80] {
            lo.observe_window_total(mib * MIB);
            hi.observe_window_total(mib * MIB);
        }
        assert!(hi.predict().total() >= lo.predict().total());
    }

    #[test]
    fn adapts_after_phase_change() {
        let mut pred = predictor(0.8);
        for _ in 0..CDH_WINDOW {
            pred.observe_window_total(100 * MIB);
        }
        let heavy = pred.predict().total();
        for _ in 0..CDH_WINDOW {
            pred.observe_window_total(MIB);
        }
        let light = pred.predict().total();
        assert!(
            light < heavy / 10,
            "CDH window failed to slide: {light} vs {heavy}"
        );
    }

    #[test]
    fn zero_fixed_point_needs_horizon_and_cdh_saturation() {
        let mut pred = predictor(0.8);
        assert!(!pred.at_zero_traffic_fixed_point(), "fresh predictor");
        // A full horizon of zero intervals is necessary but not
        // sufficient: the CDH window (64 window-totals) must drain too.
        for _ in 0..6 {
            pred.observe_interval(0);
        }
        assert!(!pred.at_zero_traffic_fixed_point());
        for _ in 0..CDH_WINDOW {
            pred.observe_interval(0);
        }
        assert!(pred.at_zero_traffic_fixed_point());
        // At the fixed point, observing another zero changes nothing.
        let before = pred.clone();
        pred.observe_interval(0);
        assert_eq!(before.predict(), pred.predict());
        assert!(pred.at_zero_traffic_fixed_point());
        // Any traffic leaves the fixed point.
        pred.observe_interval(MIB);
        assert!(!pred.at_zero_traffic_fixed_point());
    }

    #[test]
    fn to_vec_is_uniform() {
        let mut pred = predictor(0.8);
        pred.observe_window_total(60 * MIB);
        let v = pred.predict().to_vec();
        assert_eq!(v.len(), 6);
        assert!(v.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "percentile must be in (0, 1]")]
    fn zero_percentile_panics() {
        let _ = predictor(0.0);
    }

    #[test]
    #[should_panic(expected = "multiple of the flusher period")]
    fn bad_horizon_panics() {
        let _ = DirectWritePredictor::new(
            SimDuration::from_secs(7),
            SimDuration::from_secs(30),
            0.8,
            MIB,
        );
    }
}
