//! Prediction-accuracy scoring (paper Table 2).

/// Scores next-interval traffic predictions against observed traffic.
///
/// Per interval the tracker computes the **symmetric accuracy**
///
/// ```text
/// accuracy = 1 − |predicted − actual| / max(predicted, actual)
/// ```
///
/// and reports the mean over all intervals where either side was non-zero
/// (an interval with neither predicted nor actual traffic carries no
/// information and is skipped). This definition is symmetric in over- and
/// under-prediction, lands in `[0, 1]`, and reproduces the *ordering* of
/// the paper's Table 2 (the paper does not define its formula; any
/// relative-error metric preserves the comparison between JIT-GC's and
/// ADP-GC's predictors).
///
/// # Example
///
/// ```
/// use jitgc_core::predictor::AccuracyTracker;
///
/// let mut acc = AccuracyTracker::new();
/// acc.record(100, 90);  // 90 % accurate
/// acc.record(50, 100);  // 50 % accurate
/// let score = acc.mean_accuracy().expect("two samples");
/// assert!((score - 0.70).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccuracyTracker {
    sum: f64,
    scored: u64,
    skipped_empty: u64,
}

impl AccuracyTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        AccuracyTracker::default()
    }

    /// Records one interval's predicted and actual traffic (bytes).
    pub fn record(&mut self, predicted: u64, actual: u64) {
        let max = predicted.max(actual);
        if max == 0 {
            self.skipped_empty += 1;
            return;
        }
        let diff = predicted.abs_diff(actual);
        self.sum += 1.0 - diff as f64 / max as f64;
        self.scored += 1;
    }

    /// Bulk form of [`record`](Self::record)`(0, 0)` × `n`: tallies `n`
    /// intervals where neither side carried traffic. The quiescence
    /// fast-forward uses this to account a whole idle span's worth of
    /// matured zero-predictions in O(1) with a state byte-identical to
    /// `n` individual calls (a zero/zero record only bumps the skip
    /// counter — `sum` and `scored` are untouched).
    pub fn skip_empty(&mut self, n: u64) {
        self.skipped_empty += n;
    }

    /// Mean accuracy in `[0, 1]`, or `None` before the first informative
    /// interval.
    #[must_use]
    pub fn mean_accuracy(&self) -> Option<f64> {
        (self.scored > 0).then(|| self.sum / self.scored as f64)
    }

    /// Mean accuracy as a percentage, the paper's Table 2 unit.
    #[must_use]
    pub fn mean_accuracy_percent(&self) -> Option<f64> {
        self.mean_accuracy().map(|a| a * 100.0)
    }

    /// Number of scored (informative) intervals.
    #[must_use]
    pub fn scored_intervals(&self) -> u64 {
        self.scored
    }

    /// Number of intervals skipped because both sides were zero.
    #[must_use]
    pub fn skipped_intervals(&self) -> u64 {
        self.skipped_empty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let mut acc = AccuracyTracker::new();
        acc.record(42, 42);
        assert_eq!(acc.mean_accuracy(), Some(1.0));
    }

    #[test]
    fn total_miss_scores_zero() {
        let mut acc = AccuracyTracker::new();
        acc.record(0, 100);
        assert_eq!(acc.mean_accuracy(), Some(0.0));
        acc.record(100, 0);
        assert_eq!(acc.mean_accuracy(), Some(0.0));
    }

    #[test]
    fn symmetric_in_direction() {
        let mut over = AccuracyTracker::new();
        let mut under = AccuracyTracker::new();
        over.record(200, 100);
        under.record(100, 200);
        assert_eq!(over.mean_accuracy(), under.mean_accuracy());
    }

    #[test]
    fn empty_intervals_are_skipped() {
        let mut acc = AccuracyTracker::new();
        acc.record(0, 0);
        assert_eq!(acc.mean_accuracy(), None);
        assert_eq!(acc.skipped_intervals(), 1);
        acc.record(10, 10);
        assert_eq!(acc.mean_accuracy(), Some(1.0));
        assert_eq!(acc.scored_intervals(), 1);
    }

    #[test]
    fn bulk_skip_matches_individual_empty_records() {
        let mut bulk = AccuracyTracker::new();
        let mut looped = AccuracyTracker::new();
        for acc in [&mut bulk, &mut looped] {
            acc.record(100, 90);
        }
        bulk.skip_empty(1_000);
        for _ in 0..1_000 {
            looped.record(0, 0);
        }
        assert_eq!(bulk, looped);
        assert_eq!(bulk.skipped_intervals(), 1_000);
        assert_eq!(bulk.scored_intervals(), 1);
    }

    #[test]
    fn percent_scale() {
        let mut acc = AccuracyTracker::new();
        acc.record(80, 100);
        let pct = acc.mean_accuracy_percent().expect("one sample");
        assert!((pct - 80.0).abs() < 1e-9);
    }

    #[test]
    fn mean_over_multiple_intervals() {
        let mut acc = AccuracyTracker::new();
        acc.record(100, 100); // 1.0
        acc.record(100, 50); // 0.5
        acc.record(100, 0); // 0.0
        let mean = acc.mean_accuracy().expect("three samples");
        assert!((mean - 0.5).abs() < 1e-9);
    }
}
