//! The buffered-write demand predictor (paper Sec. 3.2.1).

use jitgc_ftl::SipList;
use jitgc_pagecache::PageCache;
use jitgc_sim::{ByteSize, SimDuration, SimTime};

/// The sequence `D_buf(t) = (D¹_buf, …, D^Nwb_buf)` of per-interval upper
/// bounds on buffered write-back traffic, in bytes.
///
/// Index `i` (0-based `i-1`) covers the future write-back interval
/// `I^i_wb(t) = [t + i·p, t + (i+1)·p]`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BufferedDemand {
    per_interval: Vec<u64>,
}

impl BufferedDemand {
    /// A zero demand over `nwb` intervals.
    #[must_use]
    pub fn zero(nwb: usize) -> Self {
        BufferedDemand {
            per_interval: vec![0; nwb],
        }
    }

    /// `D^i_buf` in bytes (`i` is 1-based as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or beyond `N_wb`.
    #[must_use]
    pub fn interval(&self, i: usize) -> u64 {
        assert!(i >= 1 && i <= self.per_interval.len(), "interval index {i}");
        self.per_interval[i - 1]
    }

    /// All intervals, `D¹` first.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.per_interval
    }

    /// Total demand over the horizon, `Σᵢ D^i_buf`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_interval.iter().sum()
    }

    /// Number of intervals `N_wb`.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.per_interval.len()
    }
}

/// Predicts future buffered write-back traffic by scanning dirty pages in
/// the page cache (paper Sec. 3.2.1, Fig. 4).
///
/// A dirty page last updated at `u` expires at `u + τ_expire` and is
/// flushed at the first flusher wake-up at or after that instant; invoked
/// right after the wake-up at time `t`, the predictor assigns it to
/// interval `k = ⌈(u + τ_expire − t) / p⌉` (clamped to `[1, N_wb]`).
///
/// The flusher's second condition (total dirty data must exceed `τ_flush`
/// for expired pages to be written back) is deliberately **relaxed** by
/// default, exactly as in the paper: the predictor assumes every dirty
/// page flushes at expiry whether or not `τ_flush` will actually gate it.
/// The prediction therefore errs *high* by at most `τ_flush` worth of
/// pages — reserving slightly too much is cheaper than the foreground GC a
/// surprise flush would cause under an under-estimate. The strict variant
/// ([`BufferedWritePredictor::with_strict_tau_flush`]) checks the
/// condition instead and exists for the ablation bench.
///
/// The same scan produces the **SIP list**: every dirty page's logical
/// address, whose on-flash copy is about to become garbage.
///
/// # Example
///
/// ```
/// use jitgc_core::predictor::BufferedWritePredictor;
/// use jitgc_pagecache::{PageCache, PageCacheConfig};
/// use jitgc_nand::Lpn;
/// use jitgc_sim::{ByteSize, SimDuration, SimTime};
///
/// let predictor = BufferedWritePredictor::new(
///     SimDuration::from_secs(5),
///     SimDuration::from_secs(30),
///     ByteSize::kib(4),
/// );
/// let mut cache = PageCache::new(PageCacheConfig::builder().build());
/// cache.write(Lpn(1), SimTime::from_secs(1));
///
/// let (demand, sip) = predictor.predict(&cache, SimTime::from_secs(5));
/// assert_eq!(demand.interval(6), 4096); // flushes ~30 s out
/// assert!(sip.contains(Lpn(1)));
/// ```
#[derive(Debug, Clone)]
pub struct BufferedWritePredictor {
    p: SimDuration,
    tau_expire: SimDuration,
    page_size: ByteSize,
    strict_tau_flush: bool,
}

impl BufferedWritePredictor {
    /// Creates a predictor for a flusher period `p` and expiration
    /// threshold `τ_expire`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero or `τ_expire` is not a positive multiple of
    /// `p` (the paper assumes `τ_expire = N_wb · p`).
    #[must_use]
    pub fn new(p: SimDuration, tau_expire: SimDuration, page_size: ByteSize) -> Self {
        assert!(!p.is_zero(), "flusher period must be non-zero");
        assert!(
            !tau_expire.is_zero() && tau_expire.as_micros().is_multiple_of(p.as_micros()),
            "tau_expire must be a positive multiple of the flusher period"
        );
        BufferedWritePredictor {
            p,
            tau_expire,
            page_size,
            strict_tau_flush: false,
        }
    }

    /// Switches to the strict `τ_flush` model: when the cache's current
    /// dirty total is at or below the `τ_flush` threshold, the flusher's
    /// second condition gates every write-back, so the strict predictor
    /// forecasts zero flush traffic (ablation variant; the paper relaxes
    /// the condition instead).
    #[must_use]
    pub fn with_strict_tau_flush(mut self) -> Self {
        self.strict_tau_flush = true;
        self
    }

    /// The prediction horizon `N_wb = τ_expire / p`.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.tau_expire.div_duration(self.p) as usize
    }

    /// Polls `cache` at time `t` (right after a flusher wake-up) and
    /// returns the per-interval demand bound plus the SIP list.
    ///
    /// Equivalent to [`predict_into`](Self::predict_into) with a fresh
    /// SIP list; prefer `predict_into` on a hot path so the list's
    /// backing storage is reused across polls.
    #[must_use]
    pub fn predict(&self, cache: &PageCache, t: SimTime) -> (BufferedDemand, SipList) {
        let mut sip = SipList::new();
        let demand = self.predict_into(cache, t, &mut sip);
        (demand, sip)
    }

    /// Polls `cache` at time `t`, refilling `sip` in place and returning
    /// the per-interval demand bound.
    ///
    /// When the cache's configured
    /// [`flusher_period`](jitgc_pagecache::PageCacheConfig::flusher_period)
    /// matches this predictor's `p` and `t` falls on a period boundary —
    /// the engine polls at exact multiples of `p`, so in practice always —
    /// the demand is read off the cache's incremental dirty-age epoch
    /// counters and the SIP list is a bulk snapshot of its dirty-LPN
    /// bitmap: O(distinct epochs + LPN-space words) instead of a walk
    /// over every dirty page. Any mismatch falls back to the full scan
    /// ([`predict_scan`](Self::predict_scan)), which is bit-identical,
    /// just slower. Debug builds run both and assert they agree on every
    /// poll.
    ///
    /// Why the counters are exact: with `τ_expire = N_wb · p` (enforced
    /// by the constructor) and `t = m · p`, a page last updated at `u`
    /// with epoch `e = ⌈u / p⌉` satisfies
    /// `⌈(u + τ_expire − t) / p⌉ = e + N_wb − m` whenever the numerator
    /// is positive, and both sides clamp to interval 1 when it is not —
    /// so pages sharing an epoch share a write-back interval.
    #[must_use]
    pub fn predict_into(&self, cache: &PageCache, t: SimTime, sip: &mut SipList) -> BufferedDemand {
        let p_us = self.p.as_micros();
        let fast = cache.config().flusher_period() == self.p && t.as_micros().is_multiple_of(p_us);
        if !fast {
            return self.scan_into(cache, t, sip);
        }

        let nwb = self.horizon();
        let mut demand = vec![0u64; nwb];
        // The SIP list always contains every dirty page — whenever it does
        // get flushed, the on-flash copy dies.
        sip.assign_words(cache.dirty_lpn_words(), cache.dirty_count() as usize);
        let gated =
            self.strict_tau_flush && cache.dirty_count() <= cache.config().flush_threshold_pages();
        if !gated {
            let page_bytes = self.page_size.as_u64();
            let m = t.as_micros() / p_us;
            for (e, n) in cache.dirty_epochs() {
                let k = (e + nwb as u64).saturating_sub(m).clamp(1, nwb as u64) as usize;
                demand[k - 1] += n * page_bytes;
            }
        }
        let demand = BufferedDemand {
            per_interval: demand,
        };

        // Equivalence oracle: the incremental counters and bitmap snapshot
        // must reproduce the full dirty-list scan exactly, every poll.
        #[cfg(debug_assertions)]
        {
            let (scan_demand, scan_sip) = self.predict_scan(cache, t);
            assert_eq!(
                demand, scan_demand,
                "incremental demand diverged from the full scan at t={t:?}"
            );
            assert_eq!(
                *sip, scan_sip,
                "SIP bitmap snapshot diverged from the full scan at t={t:?}"
            );
        }
        demand
    }

    /// The reference implementation: a full walk over the cache's dirty
    /// list. Kept public as the equivalence oracle for debug builds and
    /// property tests; [`predict_into`](Self::predict_into) must match it
    /// bit for bit.
    #[must_use]
    pub fn predict_scan(&self, cache: &PageCache, t: SimTime) -> (BufferedDemand, SipList) {
        let mut sip = SipList::new();
        let demand = self.scan_into(cache, t, &mut sip);
        (demand, sip)
    }

    /// [`predict_scan`](Self::predict_scan) body, refilling `sip` in place.
    fn scan_into(&self, cache: &PageCache, t: SimTime, sip: &mut SipList) -> BufferedDemand {
        let nwb = self.horizon();
        let mut demand = vec![0u64; nwb];
        sip.clear();
        let page_bytes = self.page_size.as_u64();

        let gated =
            self.strict_tau_flush && cache.dirty_count() <= cache.config().flush_threshold_pages();
        for (lpn, last_update) in cache.dirty_pages() {
            sip.insert(lpn);
            if gated {
                // Strict model: τ_flush currently blocks all write-back.
                continue;
            }
            let expiry = last_update.saturating_add(self.tau_expire);
            let remaining = expiry.saturating_since(t);
            // ⌈remaining / p⌉, clamped into [1, N_wb].
            let k = (remaining.as_micros().div_ceil(self.p.as_micros()) as usize).clamp(1, nwb);
            demand[k - 1] += page_bytes;
        }
        BufferedDemand {
            per_interval: demand,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitgc_nand::Lpn;
    use jitgc_pagecache::PageCacheConfig;

    const MIB: u64 = 1024 * 1024;

    fn predictor() -> BufferedWritePredictor {
        BufferedWritePredictor::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(30),
            ByteSize::mib(1), // 1 MiB pages so sizes read directly in MiB
        )
    }

    fn big_cache() -> PageCache {
        PageCache::new(
            PageCacheConfig::builder()
                .capacity_pages(100_000)
                .tau_expire(SimDuration::from_secs(30))
                .tau_flush_permille(1_000) // pressure never fires
                .build(),
        )
    }

    fn write_mib(cache: &mut PageCache, start: u64, mib: u64, at_secs: u64) {
        for i in 0..mib {
            cache.write(Lpn(start + i), SimTime::from_secs(at_secs));
        }
    }

    /// The worked example of the paper's Fig. 4: writes A(20 MB)@1s,
    /// B(20 MB)@3s, C(20 MB)@6s, B′@8s, D(200 MB)@16s with p = 5 s and
    /// τ_expire = 30 s.
    #[test]
    fn paper_fig4_example() {
        let pred = predictor();
        let mut cache = big_cache();

        // Distinct LPN ranges per request: A=0.., B=100.., C=200.., D=300...
        write_mib(&mut cache, 0, 20, 1); // A
        write_mib(&mut cache, 100, 20, 3); // B

        // D_buf(5) = (0, 0, 0, 0, 0, 40)
        let (d5, sip5) = pred.predict(&cache, SimTime::from_secs(5));
        assert_eq!(
            d5.as_slice(),
            &[0, 0, 0, 0, 0, 40 * MIB],
            "D_buf(5) mismatch"
        );
        assert_eq!(sip5.len(), 40);

        write_mib(&mut cache, 200, 20, 6); // C
        write_mib(&mut cache, 100, 20, 8); // B′ (update resets B's age)

        // D_buf(10) = (0, 0, 0, 0, 20, 40)
        let (d10, _) = pred.predict(&cache, SimTime::from_secs(10));
        assert_eq!(
            d10.as_slice(),
            &[0, 0, 0, 0, 20 * MIB, 40 * MIB],
            "D_buf(10) mismatch: B′ delayed B, C joins it in I⁶"
        );

        write_mib(&mut cache, 300, 200, 16); // D

        // D_buf(20) = (0, 0, 20, 40, 0, 200)
        let (d20, sip20) = pred.predict(&cache, SimTime::from_secs(20));
        assert_eq!(
            d20.as_slice(),
            &[0, 0, 20 * MIB, 40 * MIB, 0, 200 * MIB],
            "D_buf(20) mismatch"
        );
        assert_eq!(sip20.len(), 20 + 20 + 20 + 200);
        assert_eq!(d20.total(), 260 * MIB);
    }

    #[test]
    fn already_expired_pages_land_in_interval_one() {
        let pred = predictor();
        let mut cache = big_cache();
        cache.write(Lpn(0), SimTime::from_secs(0));
        // At t = 40 the page expired at 30; it will flush at the next
        // wake-up, i.e. interval 1. (In the real pipeline the flusher at
        // t = 40 would already have taken it; this covers the boundary.)
        let (d, _) = pred.predict(&cache, SimTime::from_secs(40));
        assert_eq!(d.interval(1), MIB);
        assert_eq!(d.total(), MIB);
    }

    #[test]
    fn page_written_now_lands_in_last_interval() {
        let pred = predictor();
        let mut cache = big_cache();
        cache.write(Lpn(0), SimTime::from_secs(10));
        let (d, _) = pred.predict(&cache, SimTime::from_secs(10));
        assert_eq!(d.interval(6), MIB);
    }

    #[test]
    fn empty_cache_predicts_zero() {
        let pred = predictor();
        let cache = big_cache();
        let (d, sip) = pred.predict(&cache, SimTime::from_secs(5));
        assert_eq!(d.total(), 0);
        assert!(sip.is_empty());
        assert_eq!(d.horizon(), 6);
    }

    #[test]
    fn strict_variant_respects_tau_flush_gate() {
        // Threshold 2 pages (capacity 20, 10 %): with 2 dirty pages the
        // flusher's second condition blocks all write-back, so the strict
        // predictor forecasts nothing while the relaxed one forecasts the
        // expiry-time flush.
        let cache_cfg = PageCacheConfig::builder()
            .capacity_pages(20)
            .tau_expire(SimDuration::from_secs(30))
            .tau_flush_permille(100)
            .build();
        let mut cache = PageCache::new(cache_cfg);
        cache.write(Lpn(0), SimTime::from_secs(10));
        cache.write(Lpn(1), SimTime::from_secs(10));
        let relaxed = predictor();
        let strict = predictor().with_strict_tau_flush();
        let t = SimTime::from_secs(10);
        let (dr, sip_r) = relaxed.predict(&cache, t);
        let (ds, sip_s) = strict.predict(&cache, t);
        assert_eq!(dr.interval(6), 2 * MIB);
        assert_eq!(ds.total(), 0, "strict model sees the τ_flush gate");
        // The relaxed over-prediction is bounded by the threshold.
        assert!(dr.total() - ds.total() <= 2 * MIB);
        // Both still report the full SIP list.
        assert_eq!(sip_r.len(), 2);
        assert_eq!(sip_s.len(), 2);
    }

    #[test]
    fn strict_variant_predicts_once_over_threshold() {
        // Above the threshold the gate is open: both variants agree.
        let cache_cfg = PageCacheConfig::builder()
            .capacity_pages(20)
            .tau_expire(SimDuration::from_secs(30))
            .tau_flush_permille(100) // threshold 2
            .build();
        let mut cache = PageCache::new(cache_cfg);
        for i in 0..5u64 {
            cache.write(Lpn(i), SimTime::from_secs(10));
        }
        let relaxed = predictor();
        let strict = predictor().with_strict_tau_flush();
        let t = SimTime::from_secs(10);
        let (dr, _) = relaxed.predict(&cache, t);
        let (ds, _) = strict.predict(&cache, t);
        assert_eq!(dr, ds);
        assert_eq!(ds.interval(6), 5 * MIB);
    }

    #[test]
    fn incremental_poll_matches_scan_at_period_boundaries() {
        let pred = predictor();
        let mut cache = big_cache();
        write_mib(&mut cache, 0, 20, 1);
        write_mib(&mut cache, 100, 20, 3);
        write_mib(&mut cache, 200, 5, 8);
        cache.flusher_tick(SimTime::from_secs(35));
        for t_secs in [5u64, 10, 15, 35, 40, 100] {
            let t = SimTime::from_secs(t_secs);
            let (scan_d, scan_sip) = pred.predict_scan(&cache, t);
            let mut sip = SipList::new();
            let d = pred.predict_into(&cache, t, &mut sip);
            assert_eq!(d, scan_d, "demand at t={t_secs}s");
            assert_eq!(sip, scan_sip, "sip at t={t_secs}s");
        }
    }

    #[test]
    fn off_boundary_poll_falls_back_to_scan() {
        let pred = predictor();
        let mut cache = big_cache();
        write_mib(&mut cache, 0, 10, 2);
        // 7 s is not a multiple of p = 5 s: the fast path must not engage,
        // and the result must still equal the reference scan.
        let t = SimTime::from_secs(7);
        let (scan_d, scan_sip) = pred.predict_scan(&cache, t);
        let (d, sip) = pred.predict(&cache, t);
        assert_eq!(d, scan_d);
        assert_eq!(sip, scan_sip);
    }

    #[test]
    fn mismatched_cache_period_falls_back_to_scan() {
        let pred = predictor(); // p = 5 s
        let mut cache = PageCache::new(
            PageCacheConfig::builder()
                .capacity_pages(1_000)
                .tau_expire(SimDuration::from_secs(30))
                .tau_flush_permille(1_000)
                .flusher_period(SimDuration::from_secs(3)) // ≠ p
                .build(),
        );
        cache.write(Lpn(0), SimTime::from_secs(1));
        let t = SimTime::from_secs(5);
        let (scan_d, scan_sip) = pred.predict_scan(&cache, t);
        let (d, sip) = pred.predict(&cache, t);
        assert_eq!(d, scan_d);
        assert_eq!(sip, scan_sip);
        assert_eq!(d.interval(6), MIB);
    }

    #[test]
    fn predict_into_reuses_the_sip_list() {
        let pred = predictor();
        let mut cache = big_cache();
        cache.write(Lpn(7), SimTime::from_secs(1));
        let mut sip = SipList::new();
        sip.insert(Lpn(999));
        let _ = pred.predict_into(&cache, SimTime::from_secs(5), &mut sip);
        assert_eq!(sip.len(), 1);
        assert!(sip.contains(Lpn(7)));
        assert!(!sip.contains(Lpn(999)), "stale entry survived the refill");
    }

    #[test]
    #[should_panic(expected = "multiple of the flusher period")]
    fn non_multiple_tau_expire_panics() {
        let _ = BufferedWritePredictor::new(
            SimDuration::from_secs(7),
            SimDuration::from_secs(30),
            ByteSize::kib(4),
        );
    }

    #[test]
    #[should_panic(expected = "interval index 0")]
    fn interval_zero_panics() {
        let d = BufferedDemand::zero(6);
        let _ = d.interval(0);
    }

    #[test]
    fn demand_accessors() {
        let d = BufferedDemand::zero(4);
        assert_eq!(d.horizon(), 4);
        assert_eq!(d.total(), 0);
        assert_eq!(d.as_slice(), &[0, 0, 0, 0]);
    }
}
