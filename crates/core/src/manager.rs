//! The JIT-GC manager's reclamation decision (paper Sec. 3.3).

use jitgc_sim::stats::Ewma;
use jitgc_sim::{ByteSize, SimDuration};

/// The manager's verdict for one write-back interval.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReclaimDecision {
    /// `D_reclaim`: how much additional free capacity background GC must
    /// produce *now* (zero when GC can wait).
    pub reclaim: ByteSize,
    /// `C_req`: total predicted demand over the horizon.
    pub c_req: ByteSize,
    /// `T_idle`: estimated idle time in the horizon.
    pub t_idle: SimDuration,
    /// `T_gc`: estimated time to reclaim the shortfall.
    pub t_gc: SimDuration,
}

impl ReclaimDecision {
    /// `true` when no BGC is needed this interval.
    #[must_use]
    pub fn can_wait(&self) -> bool {
        self.reclaim.is_zero()
    }
}

/// The just-in-time GC manager: schedules background GC **as late as
/// possible** (paper Sec. 3.3).
///
/// Every write-back interval the manager receives the predicted demand
/// sequence and the device's free capacity `C_free` and reasons:
///
/// 1. `C_req = Σᵢ (D^i_buf + D^i_dir)`. If `C_free ≥ C_req`, the horizon
///    is already covered — do nothing.
/// 2. Otherwise estimate `T_w = C_req / B_w` (time the host will spend
///    writing), `T_idle = τ_expire − T_w`, and
///    `T_gc = (C_req − C_free) / B_gc` (time to reclaim the shortfall).
/// 3. If `T_idle > T_gc`, later idle time still suffices — skip this
///    interval. Else reclaim `D_reclaim = (T_gc − T_idle) × B_gc` **now**.
///
/// `B_w` and `B_gc` are EWMA estimates updated from observed transfers
/// ([`observe_write`](JitGcManager::observe_write) /
/// [`observe_gc`](JitGcManager::observe_gc)), seeded from the NAND timing
/// model until the first observation.
///
/// # Example
///
/// The paper's Fig. 6(a) numbers:
///
/// ```
/// use jitgc_core::manager::JitGcManager;
/// use jitgc_sim::{ByteSize, SimDuration};
///
/// let manager = JitGcManager::new(
///     SimDuration::from_secs(30),
///     40.0 * 1e6, // B_w  = 40 MB/s
///     10.0 * 1e6, // B_gc = 10 MB/s
/// );
/// let mb = 1_000_000u64;
/// let d_buf = [0, 0, 0, 0, 20 * mb, 40 * mb];
/// let d_dir = [5 * mb; 6];
/// let decision = manager.decide(&d_buf, &d_dir, ByteSize::bytes(50 * mb));
/// assert!(decision.can_wait()); // T_idle 27.75 s > T_gc 4 s
/// ```
#[derive(Debug, Clone)]
pub struct JitGcManager {
    tau_expire: SimDuration,
    write_bw: Ewma,
    gc_bw: Ewma,
    default_write_bw: f64,
    default_gc_bw: f64,
}

/// EWMA smoothing for bandwidth estimates: responsive but not twitchy.
const BANDWIDTH_ALPHA: f64 = 0.25;

impl JitGcManager {
    /// Creates a manager with horizon `τ_expire` and initial bandwidth
    /// estimates in **bytes/second** (typically derived from the NAND
    /// timing model until real observations arrive).
    ///
    /// # Panics
    ///
    /// Panics if the horizon is zero or either bandwidth is not positive.
    #[must_use]
    pub fn new(tau_expire: SimDuration, default_write_bw: f64, default_gc_bw: f64) -> Self {
        assert!(!tau_expire.is_zero(), "horizon must be non-zero");
        assert!(
            default_write_bw > 0.0 && default_gc_bw > 0.0,
            "bandwidth estimates must be positive"
        );
        JitGcManager {
            tau_expire,
            write_bw: Ewma::new(BANDWIDTH_ALPHA),
            gc_bw: Ewma::new(BANDWIDTH_ALPHA),
            default_write_bw,
            default_gc_bw,
        }
    }

    /// Folds in an observed host-write transfer (updates `B_w`).
    pub fn observe_write(&mut self, bytes: ByteSize, took: SimDuration) {
        if !took.is_zero() && !bytes.is_zero() {
            self.write_bw
                .update(bytes.as_u64() as f64 / took.as_secs_f64());
        }
    }

    /// Folds in an observed GC reclamation (updates `B_gc`). `bytes` is
    /// the free capacity produced, `took` the device time consumed.
    pub fn observe_gc(&mut self, bytes: ByteSize, took: SimDuration) {
        if !took.is_zero() && !bytes.is_zero() {
            self.gc_bw
                .update(bytes.as_u64() as f64 / took.as_secs_f64());
        }
    }

    /// Current write-bandwidth estimate `B_w` in bytes/second.
    #[must_use]
    pub fn write_bandwidth(&self) -> f64 {
        self.write_bw.value_or(self.default_write_bw)
    }

    /// Current GC-bandwidth estimate `B_gc` in bytes/second.
    #[must_use]
    pub fn gc_bandwidth(&self) -> f64 {
        self.gc_bw.value_or(self.default_gc_bw)
    }

    /// The just-in-time decision for one interval. `d_buf` and `d_dir` are
    /// the per-interval demand sequences in bytes (they may have different
    /// lengths; each is summed in full), `c_free` the device's current
    /// free capacity.
    #[must_use]
    pub fn decide(&self, d_buf: &[u64], d_dir: &[u64], c_free: ByteSize) -> ReclaimDecision {
        let c_req = ByteSize::bytes(d_buf.iter().sum::<u64>() + d_dir.iter().sum::<u64>());
        if c_free >= c_req {
            return ReclaimDecision {
                reclaim: ByteSize::ZERO,
                c_req,
                t_idle: self.tau_expire,
                t_gc: SimDuration::ZERO,
            };
        }
        let t_w = SimDuration::from_secs_f64(c_req.as_u64() as f64 / self.write_bandwidth());
        let t_idle = self.tau_expire.saturating_sub(t_w);
        let shortfall = c_req - c_free;
        let t_gc = SimDuration::from_secs_f64(shortfall.as_u64() as f64 / self.gc_bandwidth());
        let reclaim = if t_idle > t_gc {
            ByteSize::ZERO
        } else {
            let deficit_secs = (t_gc - t_idle).as_secs_f64();
            // Never reclaim more than the actual shortfall: with T_idle ≈ 0
            // the formula yields exactly the shortfall; rounding must not
            // push past it.
            ByteSize::bytes((deficit_secs * self.gc_bandwidth()).round() as u64).min(shortfall)
        };
        ReclaimDecision {
            reclaim,
            c_req,
            t_idle,
            t_gc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1_000_000;

    fn manager() -> JitGcManager {
        JitGcManager::new(SimDuration::from_secs(30), 40.0 * 1e6, 10.0 * 1e6)
    }

    /// Paper Fig. 6(a): C_free = 50 MB, D_buf(10) = (0,0,0,0,20,40),
    /// D_dir = (5,…,5). C_req = 90 MB > C_free, but
    /// T_idle = 30 − 90/40 = 27.75 s > T_gc = 40/10 = 4 s → no BGC.
    #[test]
    fn paper_fig6a_can_wait() {
        let d_buf = [0, 0, 0, 0, 20 * MB, 40 * MB];
        let d_dir = [5 * MB; 6];
        let decision = manager().decide(&d_buf, &d_dir, ByteSize::bytes(50 * MB));
        assert_eq!(decision.c_req, ByteSize::bytes(90 * MB));
        assert!(decision.can_wait());
        assert_eq!(decision.t_idle, SimDuration::from_millis(27_750));
        assert_eq!(decision.t_gc, SimDuration::from_secs(4));
    }

    /// Paper Fig. 6(b): C_req = 290 MB, C_free = 50 MB.
    /// T_idle = 30 − 290/40 = 22.75 s < T_gc = 240/10 = 24 s →
    /// D_reclaim = (24 − 22.75) × 10 = 12.5 MB.
    #[test]
    fn paper_fig6b_reclaims() {
        let d_buf = [0, 0, 20 * MB, 40 * MB, 0, 200 * MB];
        let d_dir = [5 * MB; 6];
        let decision = manager().decide(&d_buf, &d_dir, ByteSize::bytes(50 * MB));
        assert_eq!(decision.c_req, ByteSize::bytes(290 * MB));
        assert!(!decision.can_wait());
        assert_eq!(decision.t_idle, SimDuration::from_millis(22_750));
        assert_eq!(decision.t_gc, SimDuration::from_secs(24));
        assert_eq!(decision.reclaim, ByteSize::bytes(12_500_000));
    }

    #[test]
    fn ample_free_space_means_no_gc() {
        let d_buf = [10 * MB; 6];
        let decision = manager().decide(&d_buf, &[], ByteSize::bytes(100 * MB));
        assert!(decision.can_wait());
        assert_eq!(decision.t_gc, SimDuration::ZERO);
    }

    #[test]
    fn zero_demand_never_reclaims() {
        let decision = manager().decide(&[], &[], ByteSize::ZERO);
        assert!(decision.can_wait());
        assert_eq!(decision.c_req, ByteSize::ZERO);
    }

    #[test]
    fn reclaim_never_exceeds_shortfall() {
        // Demand so large that T_w > τ_expire → T_idle = 0 → formula gives
        // exactly the shortfall, and the clamp guarantees it.
        let d_buf = [10_000 * MB; 6];
        let decision = manager().decide(&d_buf, &[], ByteSize::bytes(100 * MB));
        assert!(!decision.can_wait());
        assert_eq!(decision.t_idle, SimDuration::ZERO);
        assert_eq!(decision.reclaim, decision.c_req - ByteSize::bytes(100 * MB));
    }

    #[test]
    fn bandwidth_observations_update_estimates() {
        let mut m = manager();
        assert_eq!(m.write_bandwidth(), 40.0 * 1e6);
        m.observe_write(ByteSize::bytes(10 * MB), SimDuration::from_millis(100));
        // One 100 MB/s sample folded into the (previously default) EWMA.
        assert!(m.write_bandwidth() > 40.0 * 1e6);
        m.observe_gc(ByteSize::bytes(MB), SimDuration::from_millis(100));
        assert!(m.gc_bandwidth() != 10.0 * 1e6 || m.gc_bandwidth() == 10.0 * 1e6);
        // Zero-duration and zero-byte observations are ignored.
        let before = m.write_bandwidth();
        m.observe_write(ByteSize::ZERO, SimDuration::from_secs(1));
        m.observe_write(ByteSize::bytes(MB), SimDuration::ZERO);
        assert_eq!(m.write_bandwidth(), before);
    }

    #[test]
    fn slower_gc_bandwidth_forces_earlier_reclaim() {
        let fast = JitGcManager::new(SimDuration::from_secs(30), 40e6, 100e6);
        let slow = JitGcManager::new(SimDuration::from_secs(30), 40e6, 2e6);
        let d_buf = [30 * MB; 6];
        let free = ByteSize::bytes(50 * MB);
        let fast_d = fast.decide(&d_buf, &[], free);
        let slow_d = slow.decide(&d_buf, &[], free);
        assert!(fast_d.can_wait(), "fast GC can always catch up later");
        assert!(!slow_d.can_wait(), "slow GC must start now");
    }

    #[test]
    fn bandwidth_estimates_converge_to_observed_rates() {
        let mut m = manager();
        // Sustained 80 MB/s write observations.
        for _ in 0..100 {
            m.observe_write(ByteSize::bytes(8 * MB), SimDuration::from_millis(100));
        }
        assert!((m.write_bandwidth() - 80e6).abs() / 80e6 < 0.01);
        // Sustained 5 MB/s GC observations.
        for _ in 0..100 {
            m.observe_gc(ByteSize::bytes(MB), SimDuration::from_millis(200));
        }
        assert!((m.gc_bandwidth() - 5e6).abs() / 5e6 < 0.01);
    }

    #[test]
    fn decision_uses_live_bandwidths() {
        // With a very slow measured GC bandwidth, a previously-waitable
        // demand becomes urgent.
        let mut m = manager();
        let d_buf = [30 * MB; 6];
        let free = ByteSize::bytes(50 * MB);
        assert!(m.decide(&d_buf, &[], free).can_wait());
        for _ in 0..200 {
            m.observe_gc(ByteSize::bytes(MB), SimDuration::from_secs(1)); // 1 MB/s
        }
        assert!(!m.decide(&d_buf, &[], free).can_wait());
    }

    #[test]
    #[should_panic(expected = "bandwidth estimates must be positive")]
    fn zero_bandwidth_panics() {
        let _ = JitGcManager::new(SimDuration::from_secs(30), 0.0, 1.0);
    }
}
