#![cfg(feature = "proptest")]

//! Property-based tests of the predictors and the manager.

use jitgc_core::manager::JitGcManager;
use jitgc_core::predictor::{AccuracyTracker, BufferedWritePredictor, DirectWritePredictor};
use jitgc_nand::Lpn;
use jitgc_pagecache::{PageCache, PageCacheConfig};
use jitgc_sim::{ByteSize, SimDuration, SimTime};
use proptest::prelude::*;

fn big_cache() -> PageCache {
    PageCache::new(
        PageCacheConfig::builder()
            .capacity_pages(10_000)
            .tau_expire(SimDuration::from_secs(30))
            .tau_flush_permille(1_000)
            .build(),
    )
}

fn predictor() -> BufferedWritePredictor {
    BufferedWritePredictor::new(
        SimDuration::from_secs(5),
        SimDuration::from_secs(30),
        ByteSize::kib(4),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The buffered demand total always equals dirty-count × page-size
    /// (the scan is exhaustive, an upper bound on *all* dirty data), and
    /// the SIP list is exactly the dirty set.
    #[test]
    fn buffered_demand_accounts_every_dirty_page(
        writes in proptest::collection::vec((0..500u64, 0..60u64), 1..200),
        scan_at in 60..120u64,
    ) {
        let mut cache = big_cache();
        for (lpn, at) in &writes {
            cache.write(Lpn(*lpn), SimTime::from_secs(*at));
        }
        let (demand, sip) = predictor().predict(&cache, SimTime::from_secs(scan_at));
        prop_assert_eq!(demand.total(), cache.dirty_count() * 4096);
        prop_assert_eq!(sip.len() as u64, cache.dirty_count());
        for (lpn, _) in cache.dirty_pages() {
            prop_assert!(sip.contains(lpn));
        }
    }

    /// Every dirty page lands in exactly one interval, and that interval
    /// index grows with the page's freshness (newer pages flush later).
    #[test]
    fn buffered_demand_orders_by_age(at_a in 0..30u64, at_b in 0..30u64) {
        let mut cache = big_cache();
        cache.write(Lpn(1), SimTime::from_secs(at_a));
        cache.write(Lpn(2), SimTime::from_secs(at_b));
        let t = SimTime::from_secs(30);
        let (demand, _) = predictor().predict(&cache, t);
        prop_assert_eq!(demand.total(), 2 * 4096);
        // Find each page's interval by predicting with only one present.
        let mut only_a = big_cache();
        only_a.write(Lpn(1), SimTime::from_secs(at_a));
        let (da, _) = predictor().predict(&only_a, t);
        let mut only_b = big_cache();
        only_b.write(Lpn(2), SimTime::from_secs(at_b));
        let (db, _) = predictor().predict(&only_b, t);
        let idx = |d: &jitgc_core::predictor::BufferedDemand| {
            (1..=d.horizon()).find(|&i| d.interval(i) > 0).expect("one page present")
        };
        if at_a < at_b {
            prop_assert!(idx(&da) <= idx(&db), "older page must not flush later");
        }
    }

    /// The direct predictor's reservation is monotone in the percentile
    /// and bounded by the largest observed window (rounded to a bin).
    #[test]
    fn direct_reservation_is_monotone_and_bounded(
        windows in proptest::collection::vec(0..1_000_000u64, 1..50),
        pa in 0.01..1.0f64,
        pb in 0.01..1.0f64,
    ) {
        let build = |pct: f64| {
            let mut p = DirectWritePredictor::new(
                SimDuration::from_secs(5),
                SimDuration::from_secs(30),
                pct,
                4096,
            );
            for &w in &windows {
                p.observe_window_total(w);
            }
            p.predict()
        };
        let (lo, hi) = if pa <= pb { (pa, pb) } else { (pb, pa) };
        prop_assert!(build(lo).total() <= build(hi).total());
        let max_window = *windows.iter().max().expect("non-empty");
        // Bin rounding can add at most one bin width.
        prop_assert!(build(1.0).total() <= max_window + 4096);
    }

    /// The manager never reclaims more than the shortfall, never reclaims
    /// with ample free space, and its reclaim is monotone non-increasing
    /// in `C_free`.
    #[test]
    fn manager_reclaim_is_sane(
        demand in proptest::collection::vec(0..50_000_000u64, 6),
        free_a in 0..100_000_000u64,
        free_b in 0..100_000_000u64,
    ) {
        let manager = JitGcManager::new(SimDuration::from_secs(30), 40e6, 10e6);
        let decide = |free: u64| manager.decide(&demand, &[], ByteSize::bytes(free));
        let total: u64 = demand.iter().sum();

        let d = decide(free_a);
        prop_assert!(d.reclaim.as_u64() <= total.saturating_sub(free_a));
        if free_a >= total {
            prop_assert!(d.can_wait());
        }
        let (lo, hi) = if free_a <= free_b { (free_a, free_b) } else { (free_b, free_a) };
        prop_assert!(
            decide(hi).reclaim <= decide(lo).reclaim,
            "more free space must never demand more reclaim"
        );
    }

    /// Accuracy is always within [0, 1] and exact-match streams score 1.
    #[test]
    fn accuracy_is_bounded(pairs in proptest::collection::vec((0..1_000u64, 0..1_000u64), 1..100)) {
        let mut acc = AccuracyTracker::new();
        let mut exact = AccuracyTracker::new();
        for (p, a) in pairs {
            acc.record(p, a);
            exact.record(p, p);
        }
        if let Some(score) = acc.mean_accuracy() {
            prop_assert!((0.0..=1.0).contains(&score));
        }
        if let Some(score) = exact.mean_accuracy() {
            prop_assert!((score - 1.0).abs() < 1e-12 || score == 1.0);
        }
    }
}
