#![cfg(feature = "proptest")]

//! Property-based equivalence of the incremental prediction pipeline.
//!
//! The buffered-write predictor has two ways to answer a poll: the
//! reference full scan of the cache's dirty list
//! ([`BufferedWritePredictor::predict_scan`]) and the O(1)-per-bucket
//! fast path over the cache's dirty-age epoch counters plus the dirty-LPN
//! bitmap ([`BufferedWritePredictor::predict_into`]). These properties
//! drive arbitrary operation sequences through the cache and demand that
//! both paths agree — demand vector and SIP list — at every poll.

use jitgc_core::predictor::BufferedWritePredictor;
use jitgc_ftl::SipList;
use jitgc_nand::Lpn;
use jitgc_pagecache::{PageCache, PageCacheConfig};
use jitgc_sim::{ByteSize, SimDuration, SimTime};
use proptest::prelude::*;

const CAPACITY: u64 = 48;
const PERIOD_SECS: u64 = 5;
const TAU_SECS: u64 = 30;

fn cache() -> PageCache {
    PageCache::new(
        PageCacheConfig::builder()
            .capacity_pages(CAPACITY)
            .tau_expire(SimDuration::from_secs(TAU_SECS))
            .tau_flush_permille(100)
            .throttle_permille(500)
            .flusher_period(SimDuration::from_secs(PERIOD_SECS))
            .build(),
    )
}

fn predictor() -> BufferedWritePredictor {
    BufferedWritePredictor::new(
        SimDuration::from_secs(PERIOD_SECS),
        SimDuration::from_secs(TAU_SECS),
        ByteSize::kib(4),
    )
}

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Read(u64),
    Invalidate(u64),
    Flush,
    Throttle,
    Evict,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..96u64).prop_map(Op::Write),
        2 => (0..96u64).prop_map(Op::Read),
        2 => (0..96u64).prop_map(Op::Invalidate),
        1 => Just(Op::Flush),
        1 => Just(Op::Throttle),
        1 => Just(Op::Evict),
    ]
}

/// Applies one op at `now`, mutating cache state the way the engine would.
fn apply(c: &mut PageCache, op: &Op, now: SimTime) {
    match op {
        Op::Write(lpn) => {
            let _ = c.write(Lpn(*lpn), now);
        }
        Op::Read(lpn) => {
            let _ = c.read(Lpn(*lpn), now);
        }
        Op::Invalidate(lpn) => {
            let _ = c.invalidate(Lpn(*lpn));
        }
        Op::Flush => {
            let _ = c.flusher_tick(now);
        }
        Op::Throttle => {
            let _ = c.throttle_excess();
        }
        Op::Evict => {
            // Clean-page eviction via capacity pressure is already covered
            // by Write; exercise the read-then-invalidate path instead.
            let _ = c.read(Lpn(0), now);
            let _ = c.invalidate(Lpn(0));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// After any operation sequence, a poll on a period boundary gives
    /// the same demand vector and SIP list through the incremental path
    /// as through the from-scratch scan.
    #[test]
    fn incremental_poll_matches_scan_after_arbitrary_ops(
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        let pred = predictor();
        let mut c = cache();
        let mut sip = SipList::new();
        let mut t = 0u64;
        for (i, op) in ops.iter().enumerate() {
            // Sub-period timestamps so writes land mid-interval too.
            t += 1 + (i as u64 % 3);
            apply(&mut c, op, SimTime::from_millis(t * 900));

            // Poll at the next period boundary after the op, the way the
            // engine's tick loop does.
            let poll_num = (t * 900) / (PERIOD_SECS * 1_000) + 1;
            let poll = SimTime::from_secs(poll_num * PERIOD_SECS);
            let demand = pred.predict_into(&c, poll, &mut sip);
            let (scan_demand, scan_sip) = pred.predict_scan(&c, poll);
            prop_assert_eq!(&demand, &scan_demand, "demand diverged at op {}", i);
            prop_assert_eq!(&sip, &scan_sip, "SIP list diverged at op {}", i);
            prop_assert_eq!(sip.len() as u64, c.dirty_count());
        }
    }

    /// Polls far in the future (every page expired) and polls straddling
    /// many elapsed periods still agree between the two paths.
    #[test]
    fn incremental_poll_matches_scan_at_distant_boundaries(
        writes in proptest::collection::vec((0..96u64, 0..200u64), 1..120),
        periods_later in 1..100u64,
    ) {
        let pred = predictor();
        let mut c = cache();
        let mut latest = 0u64;
        for (lpn, at) in &writes {
            let _ = c.write(Lpn(*lpn), SimTime::from_millis(*at * 700));
            latest = latest.max(*at * 700);
        }
        let first_boundary = latest / (PERIOD_SECS * 1_000) + 1;
        let poll = SimTime::from_secs((first_boundary + periods_later) * PERIOD_SECS);
        let mut sip = SipList::new();
        let demand = pred.predict_into(&c, poll, &mut sip);
        let (scan_demand, scan_sip) = pred.predict_scan(&c, poll);
        prop_assert_eq!(&demand, &scan_demand);
        prop_assert_eq!(&sip, &scan_sip);
    }

    /// A reused SIP list (ping-ponged across polls, as the engine does)
    /// never leaks entries from a previous poll into the next.
    #[test]
    fn reused_sip_list_carries_no_ghosts(
        rounds in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..40),
            2..6,
        ),
    ) {
        let pred = predictor();
        let mut c = cache();
        let mut sip = SipList::new();
        let mut t = 0u64;
        for ops in &rounds {
            for op in ops {
                t += 1;
                apply(&mut c, op, SimTime::from_millis(t * 800));
            }
            let poll_num = (t * 800) / (PERIOD_SECS * 1_000) + 1;
            let poll = SimTime::from_secs(poll_num * PERIOD_SECS);
            let _ = pred.predict_into(&c, poll, &mut sip);
            let (_, fresh) = pred.predict_scan(&c, poll);
            prop_assert_eq!(&sip, &fresh, "stale entries survived the reuse");
        }
    }
}
