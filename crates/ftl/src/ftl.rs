//! The page-mapping FTL proper.

use crate::victim_index::VictimIndex;
use crate::{BlockInfo, FtlConfig, FtlError, FtlStats, SipList, VictimSelector};
use jitgc_nand::{BlockId, FaultModel, Lpn, NandDevice, NandError, Ppn};
use jitgc_sim::{ByteSize, SimDuration, SimTime};

/// What kind of degradation a [`DegradeEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeKind {
    /// A block was retired as bad (endurance exceeded or erase failed);
    /// the device's usable capacity shrank by one block.
    BlockRetired(BlockId),
    /// The device entered read-only degraded mode: retirements left too
    /// little writable space to sustain further host writes.
    ReadOnly,
}

/// One entry of the device's failure timeline: when wear took capacity
/// away, and when it finally took write service away. The sequence is
/// fully determined by the fault seed and the operation stream, so two
/// runs with the same seed produce identical timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeEvent {
    /// Simulated time of the event.
    pub time: SimTime,
    /// What degraded.
    pub kind: DegradeKind,
}

/// Result of one host page write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteOutcome {
    /// Total device time charged to this write, *including* any foreground
    /// GC it had to wait for.
    pub duration: SimDuration,
    /// `true` when the write triggered foreground GC — the stall the
    /// paper's background policies try to avoid.
    pub foreground_gc: bool,
    /// Pages migrated by the foreground GC episode (0 without FGC).
    pub migrated_pages: u64,
    /// Blocks erased by the foreground GC episode (0 without FGC).
    pub erased_blocks: u64,
}

/// Result of one host page read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Device time consumed.
    pub duration: SimDuration,
}

/// Result of a batched host write ([`Ftl::host_write_batch`]).
///
/// Durations and page counts are sums over the batch; `fgc_writes` keeps
/// *per-write* resolution because the engine's stall accounting charges
/// one episode per foreground-collected write, not per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchWriteOutcome {
    /// Total device time consumed, foreground GC included.
    pub duration: SimDuration,
    /// How many writes in the batch triggered foreground GC.
    pub fgc_writes: u64,
    /// Pages migrated by foreground GC across the batch.
    pub migrated_pages: u64,
    /// Blocks erased by foreground GC across the batch.
    pub erased_blocks: u64,
}

/// Result of a batched host read ([`Ftl::host_read_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchReadOutcome {
    /// Total device time consumed by the mapped reads.
    pub duration: SimDuration,
    /// Reads of never-written pages; the host layer zero-fills these
    /// without touching the device.
    pub unmapped: u64,
    /// Reads that came back uncorrectable (injected wear faults). The
    /// affected LPNs are available from
    /// [`Ftl::failed_read_lpns`] until the next batched read.
    pub failed: u64,
}

/// Result of one background-GC invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BgcOutcome {
    /// Device time consumed (the caller hides this in idle periods).
    pub duration: SimDuration,
    /// Blocks erased.
    pub blocks_erased: u64,
    /// Valid pages migrated to keep them alive.
    pub pages_migrated: u64,
    /// Free pages gained.
    pub pages_freed: u64,
}

/// Result of one static wear-leveling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearLevelOutcome {
    /// Device time consumed.
    pub duration: SimDuration,
    /// `true` when the pass actually moved data.
    pub performed: bool,
    /// Pages relocated.
    pub moved_pages: u64,
}

/// A page-mapping flash translation layer.
///
/// See the [crate documentation](crate) for the role it plays in the JIT-GC
/// reproduction. All operations take the current simulated time `now`
/// (the FTL holds no clock of its own) and return the device time they
/// consumed; the caller owns the device timeline.
#[derive(Debug)]
pub struct Ftl {
    config: FtlConfig,
    device: NandDevice,
    mapping: Vec<Option<Ppn>>,
    free_blocks: Vec<BlockId>,
    is_free: Vec<bool>,
    active_user: Option<BlockId>,
    /// Second user stream for hot pages when hot/cold separation is on.
    active_hot: Option<BlockId>,
    active_gc: Option<BlockId>,
    /// A background-GC victim collected partially; resumed on the next
    /// BGC call (or finished by foreground GC).
    gc_in_progress: Option<BlockId>,
    /// Per-LPN last write time (allocated only with hot/cold streams).
    lpn_last_write: Option<Vec<SimTime>>,
    /// Blocks retired as bad after exceeding the endurance limit; they
    /// hold no data and are never allocated or selected again.
    is_retired: Vec<bool>,
    last_write: Vec<SimTime>,
    sip: SipList,
    sip_counts: Vec<u32>,
    sip_filter_enabled: bool,
    selector: Box<dyn VictimSelector>,
    /// Bucketed candidate index updated O(1) on seal/invalidate/erase;
    /// tracks exactly the blocks victim selection may choose from.
    victim_index: VictimIndex,
    /// `true` once retirements have shrunk writable capacity below what
    /// sustained host writes need; writes then fail with
    /// [`FtlError::ReadOnly`] while reads keep working.
    read_only: bool,
    /// Pages permanently lost to retired blocks. Their page states still
    /// sit in the device tallies as "invalid", so the space accounting
    /// subtracts this to avoid promising unreclaimable capacity.
    retired_pages: u64,
    /// The failure timeline: every retirement plus the read-only
    /// transition, in order.
    degrade_events: Vec<DegradeEvent>,
    /// LPNs whose last batched read came back uncorrectable; scratch
    /// reused across batches (a mirror layer reads these back from the
    /// surviving replica).
    failed_reads: Vec<Lpn>,
    /// Full-block collections use the batched
    /// [`copy_pages`](NandDevice::copy_pages) path when set (the
    /// default); cleared for A/B comparisons against the per-page loop.
    /// Both paths produce byte-identical state — debug builds assert it
    /// on every collection.
    bulk_gc: bool,
    /// Scratch for the bulk path's victim snapshot, reused across
    /// collections so the steady state allocates nothing.
    gc_snapshot: Vec<(Ppn, Lpn)>,
    /// Scratch for the destination PPNs a bulk copy reports back.
    gc_dst_scratch: Vec<Ppn>,
    /// Opt-in wall-clock accounting of full-block GC copy work (surfaced
    /// as the engine's `gc_copy` profile phase); measurement only, never
    /// feeds back into simulated behaviour.
    gc_copy_enabled: bool,
    gc_copy_wall: std::time::Duration,
    stats: FtlStats,
}

impl Ftl {
    /// Creates an FTL over a fresh (fully erased) device.
    #[must_use]
    pub fn new(config: FtlConfig, selector: Box<dyn VictimSelector>) -> Self {
        let mut device = NandDevice::new(*config.geometry(), *config.timing());
        if let Some(limit) = config.endurance_limit() {
            device = device.with_endurance_limit(limit);
        }
        if let Some(fault) = config.fault() {
            device = device.with_fault_model(FaultModel::new(*fault));
        }
        let blocks = config.geometry().blocks();
        Ftl {
            mapping: vec![None; config.user_pages() as usize],
            free_blocks: config.geometry().block_ids().collect(),
            is_free: vec![true; blocks as usize],
            active_user: None,
            active_hot: None,
            active_gc: None,
            gc_in_progress: None,
            lpn_last_write: config
                .hot_cold_streams()
                .then(|| vec![SimTime::ZERO; config.user_pages() as usize]),
            is_retired: vec![false; blocks as usize],
            last_write: vec![SimTime::ZERO; blocks as usize],
            sip: SipList::new(),
            sip_counts: vec![0; blocks as usize],
            sip_filter_enabled: true,
            selector,
            victim_index: VictimIndex::new(blocks, config.geometry().pages_per_block()),
            read_only: false,
            retired_pages: 0,
            degrade_events: Vec::new(),
            failed_reads: Vec::new(),
            bulk_gc: true,
            gc_snapshot: Vec::new(),
            gc_dst_scratch: Vec::new(),
            gc_copy_enabled: false,
            gc_copy_wall: std::time::Duration::ZERO,
            stats: FtlStats::default(),
            device,
            config,
        }
    }

    // ------------------------------------------------------------------
    // Host operations
    // ------------------------------------------------------------------

    /// Writes one logical page out-of-place, running foreground GC first if
    /// the free-block pool is at its floor.
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] for an address beyond the user space;
    /// [`FtlError::NoReclaimableSpace`] if foreground GC cannot free any
    /// block (only possible with pathological over-provisioning).
    pub fn host_write(&mut self, lpn: Lpn, now: SimTime) -> Result<WriteOutcome, FtlError> {
        self.check_lpn(lpn)?;
        self.host_write_checked(lpn, now)
    }

    /// [`host_write`](Self::host_write) body after address validation;
    /// batch entry points validate the whole batch once, then call this.
    fn host_write_checked(&mut self, lpn: Lpn, now: SimTime) -> Result<WriteOutcome, FtlError> {
        if self.read_only {
            return Err(FtlError::ReadOnly);
        }
        let mut outcome = WriteOutcome::default();

        // Make sure a page is available, reclaiming in the foreground if
        // the pool has fallen to the GC scratch reserve.
        let hot = self.classify_hot(lpn, now);
        self.fgc_if_at_floor(hot, now, &mut outcome)?;
        let mut active = self.ensure_writable_block(hot, now)?;

        // Out-of-place update: retire the previous copy.
        if let Some(old) = self.mapping[lpn.0 as usize] {
            self.device.invalidate(old)?;
            let b = self.device.geometry().block_of(old);
            self.victim_index.on_invalidate(b);
            if self.sip.remove(lpn) {
                self.sip_counts[b.0 as usize] = self.sip_counts[b.0 as usize].saturating_sub(1);
            }
        } else {
            // Never-written LPNs can still sit on a stale SIP list.
            self.sip.remove(lpn);
        }

        let ppn = loop {
            let offset = self
                .device
                .block(active)
                .next_free_offset()
                .expect("active block has space by construction");
            let ppn = self.device.geometry().ppn(active, offset);
            match self.device.program(ppn, lpn) {
                Ok(took) => {
                    outcome.duration += took;
                    break ppn;
                }
                Err(NandError::ProgramFailed { .. }) => {
                    // The failed page is consumed (marked invalid by the
                    // device); charge the wasted attempt and re-issue the
                    // write to the next free page, reclaiming first if the
                    // failure sealed the last page of the pool's headroom.
                    outcome.duration += self.config.timing().page_program_cost();
                    self.stats.program_retries += 1;
                    self.fgc_if_at_floor(hot, now, &mut outcome)?;
                    active = self.ensure_writable_block(hot, now)?;
                }
                Err(e) => return Err(e.into()),
            }
        };
        self.mapping[lpn.0 as usize] = Some(ppn);
        self.last_write[active.0 as usize] = now;
        if let Some(times) = self.lpn_last_write.as_mut() {
            times[lpn.0 as usize] = now;
        }
        self.stats.host_pages_written += 1;
        self.stats.hot_stream_pages += u64::from(hot);
        Ok(outcome)
    }

    /// Runs foreground GC when the next host write would need a block the
    /// pool cannot spare. When even foreground GC cannot free space — only
    /// possible once retirements have consumed the over-provisioning — the
    /// device transitions to read-only degraded mode instead of erroring
    /// with an internal GC failure.
    fn fgc_if_at_floor(
        &mut self,
        hot: bool,
        now: SimTime,
        outcome: &mut WriteOutcome,
    ) -> Result<(), FtlError> {
        if !(self.needs_active_block(hot) && self.pool_is_at_floor()) {
            return Ok(());
        }
        match self.foreground_collect(now) {
            Ok(fgc) => {
                outcome.foreground_gc = true;
                outcome.migrated_pages += fgc.pages_migrated;
                outcome.erased_blocks += fgc.blocks_erased;
                outcome.duration += fgc.duration;
                self.stats.fgc_invocations += 1;
                self.stats.fgc_blocks += fgc.blocks_erased;
                self.stats.fgc_time += fgc.duration;
                Ok(())
            }
            Err(FtlError::NoReclaimableSpace) => {
                self.enter_read_only(now);
                Err(FtlError::ReadOnly)
            }
            Err(e) => Err(e),
        }
    }

    /// [`ensure_active_block`](Self::ensure_active_block), degrading to
    /// read-only mode when no free block exists at all.
    fn ensure_writable_block(&mut self, hot: bool, now: SimTime) -> Result<BlockId, FtlError> {
        match self.ensure_active_block(hot) {
            Ok(b) => Ok(b),
            Err(FtlError::NoReclaimableSpace) => {
                self.enter_read_only(now);
                Err(FtlError::ReadOnly)
            }
            Err(e) => Err(e),
        }
    }

    /// Reads one logical page.
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] for a bad address, or
    /// [`FtlError::LpnUnmapped`] when the page has never been written.
    pub fn host_read(&mut self, lpn: Lpn, _now: SimTime) -> Result<ReadOutcome, FtlError> {
        self.check_lpn(lpn)?;
        let ppn = self.mapping[lpn.0 as usize].ok_or(FtlError::LpnUnmapped { lpn })?;
        let duration = match self.device.read(ppn) {
            Ok(d) => d,
            Err(e @ NandError::ReadFailed { .. }) => {
                self.stats.host_read_failures += 1;
                return Err(e.into());
            }
            Err(e) => return Err(e.into()),
        };
        self.stats.host_pages_read += 1;
        Ok(ReadOutcome { duration })
    }

    /// TRIMs one logical page: the mapping is dropped and the flash copy
    /// invalidated, making its space reclaimable without migration.
    ///
    /// TRIM of an unmapped page is a no-op (as on real devices).
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] for a bad address, or
    /// [`FtlError::ReadOnly`] once the device has degraded to read-only
    /// mode (TRIM mutates device state like any write).
    pub fn trim(&mut self, lpn: Lpn, _now: SimTime) -> Result<(), FtlError> {
        self.check_lpn(lpn)?;
        if self.read_only {
            return Err(FtlError::ReadOnly);
        }
        if let Some(old) = self.mapping[lpn.0 as usize].take() {
            self.device.invalidate(old)?;
            let b = self.device.geometry().block_of(old);
            self.victim_index.on_invalidate(b);
            if self.sip.remove(lpn) {
                self.sip_counts[b.0 as usize] = self.sip_counts[b.0 as usize].saturating_sub(1);
            }
        }
        self.stats.trims += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Batched host operations
    // ------------------------------------------------------------------

    /// Writes a run of logical pages in order, validating every address
    /// up front so the per-page path skips its bounds check. Device
    /// operations happen in exactly the order a [`host_write`] loop would
    /// issue them, so all counters and the device state end up identical.
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] if *any* address is out of range — in
    /// that case nothing has been written (unlike a caller loop, which
    /// would stop mid-batch); [`FtlError::NoReclaimableSpace`] propagates
    /// from foreground GC with the earlier pages already written.
    ///
    /// [`host_write`]: Self::host_write
    pub fn host_write_batch(
        &mut self,
        lpns: &[Lpn],
        now: SimTime,
    ) -> Result<BatchWriteOutcome, FtlError> {
        for &lpn in lpns {
            self.check_lpn(lpn)?;
        }
        let mut out = BatchWriteOutcome::default();
        for &lpn in lpns {
            let w = self.host_write_checked(lpn, now)?;
            out.duration += w.duration;
            out.fgc_writes += u64::from(w.foreground_gc);
            out.migrated_pages += w.migrated_pages;
            out.erased_blocks += w.erased_blocks;
        }
        Ok(out)
    }

    /// Reads a run of logical pages. Unmapped pages are not errors here:
    /// they are tallied in [`BatchReadOutcome::unmapped`] for the host
    /// layer to zero-fill, letting one call serve a request whose pages
    /// are partly unwritten.
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] if *any* address is out of range; no
    /// page has been read in that case.
    pub fn host_read_batch(
        &mut self,
        lpns: &[Lpn],
        _now: SimTime,
    ) -> Result<BatchReadOutcome, FtlError> {
        for &lpn in lpns {
            self.check_lpn(lpn)?;
        }
        let mut out = BatchReadOutcome::default();
        self.failed_reads.clear();
        for &lpn in lpns {
            match self.mapping[lpn.0 as usize] {
                Some(ppn) => match self.device.read(ppn) {
                    Ok(took) => {
                        out.duration += took;
                        self.stats.host_pages_read += 1;
                    }
                    Err(NandError::ReadFailed { .. }) => {
                        // Uncorrectable: the attempt still took a full read,
                        // but no data came back. The LPN is recorded so a
                        // redundant layer can re-read it from a mirror.
                        out.duration += self.config.timing().page_read_cost();
                        out.failed += 1;
                        self.stats.host_read_failures += 1;
                        self.failed_reads.push(lpn);
                    }
                    Err(e) => return Err(e.into()),
                },
                None => out.unmapped += 1,
            }
        }
        Ok(out)
    }

    /// Writes back a flusher batch (dirty pages, oldest first). The write
    /// path is exactly [`host_write_batch`](Self::host_write_batch); the
    /// separate entry point keeps the flusher's call site honest about
    /// intent and gives the profile a distinct frame.
    ///
    /// # Errors
    ///
    /// As [`host_write_batch`](Self::host_write_batch).
    pub fn flush_batch(
        &mut self,
        lpns: &[Lpn],
        now: SimTime,
    ) -> Result<BatchWriteOutcome, FtlError> {
        self.host_write_batch(lpns, now)
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    /// Runs background GC until `budget` time is spent, `target_free_pages`
    /// is reached (if given), or nothing reclaimable remains.
    ///
    /// Collection is **page-granular and resumable**: a victim whose
    /// remaining cost exceeds the budget is collected partially and picked
    /// up again on the next call — exactly how a production FTL interleaves
    /// GC steps with host I/O in sub-millisecond idle gaps. A bonus of
    /// preemption: host overwrites landing between steps invalidate victim
    /// pages *before* they are migrated, so interrupted victims get cheaper.
    pub fn background_collect(
        &mut self,
        now: SimTime,
        budget: SimDuration,
        target_free_pages: Option<u64>,
    ) -> BgcOutcome {
        let mut outcome = BgcOutcome::default();
        if self.read_only {
            return outcome;
        }
        let migrate_cost = self.config.timing().page_migrate_cost();
        let erase_cost = self.config.timing().block_erase_cost();
        'outer: loop {
            if let Some(target) = target_free_pages {
                if self.gc_in_progress.is_none() && self.free_pages() >= target {
                    break;
                }
            }
            // Resume the in-progress victim or start a new one.
            let victim = match self.gc_in_progress {
                Some(v) => v,
                None => {
                    let Some(v) = self.select_victim(now, true) else {
                        break;
                    };
                    self.victim_index.remove(v);
                    self.gc_in_progress = Some(v);
                    v
                }
            };
            // Migrate surviving pages one at a time, checking the budget
            // before each step.
            loop {
                let next = self.device.block(victim).valid_lpns().next();
                match next {
                    Some((offset, lpn)) => {
                        if outcome.duration + migrate_cost > budget {
                            break 'outer;
                        }
                        match self.migrate_page(victim, offset, lpn, now) {
                            Ok(took) => {
                                outcome.duration += took;
                                outcome.pages_migrated += 1;
                                self.stats.gc_pages_migrated += 1;
                            }
                            // Retirements can empty the free pool so no GC
                            // scratch block is available: background GC
                            // simply cannot make progress right now (the
                            // victim stays in progress for later).
                            Err(FtlError::NoReclaimableSpace) => break 'outer,
                            Err(e) => panic!("BGC migration failed: {e}"),
                        }
                    }
                    None => {
                        if outcome.duration + erase_cost > budget {
                            break 'outer;
                        }
                        let freed = u64::from(self.device.block(victim).invalid_pages());
                        match self.erase_or_retire(victim, now) {
                            Some(took) => {
                                outcome.duration += took;
                                outcome.blocks_erased += 1;
                                outcome.pages_freed += freed;
                            }
                            None => {
                                // Worn out: retired, nothing reclaimed.
                            }
                        }
                        self.gc_in_progress = None;
                        break;
                    }
                }
            }
        }
        if outcome.blocks_erased > 0 || outcome.pages_migrated > 0 {
            self.stats.bgc_invocations += 1;
            self.stats.bgc_blocks += outcome.blocks_erased;
            self.stats.bgc_time += outcome.duration;
        }
        outcome
    }

    /// Migrates one valid page out of `victim` into the GC write stream.
    fn migrate_page(
        &mut self,
        victim: BlockId,
        offset: u32,
        lpn: Lpn,
        now: SimTime,
    ) -> Result<SimDuration, FtlError> {
        let old_ppn = self.device.geometry().ppn(victim, offset);
        let mut took = match self.device.read(old_ppn) {
            Ok(t) => t,
            Err(NandError::ReadFailed { .. }) => {
                // Uncorrectable source read. Relocate the raw (error-laden)
                // data anyway: dropping the mapping would turn a read error
                // into silent data loss, and a real controller would salvage
                // whatever the ECC could not fix.
                self.stats.gc_read_failures += 1;
                self.config.timing().page_read_cost()
            }
            Err(e) => return Err(e.into()),
        };
        let (gc_block, new_ppn) = loop {
            let gc_block = self.ensure_active_gc_block()?;
            let gc_offset = self
                .device
                .block(gc_block)
                .next_free_offset()
                .expect("gc block has space by construction");
            let new_ppn = self.device.geometry().ppn(gc_block, gc_offset);
            match self.device.program(new_ppn, lpn) {
                Ok(t) => {
                    took += t;
                    break (gc_block, new_ppn);
                }
                Err(NandError::ProgramFailed { .. }) => {
                    // Failed page is consumed; charge the attempt and retry
                    // on the next free GC page.
                    took += self.config.timing().page_program_cost();
                    self.stats.program_retries += 1;
                }
                Err(e) => return Err(e.into()),
            }
        };
        self.device.invalidate(old_ppn)?;
        debug_assert!(
            !self.victim_index.is_tracked(victim),
            "migrating pages out of a block still tracked as a candidate"
        );
        self.mapping[lpn.0 as usize] = Some(new_ppn);
        self.last_write[gc_block.0 as usize] = now;
        if self.sip.contains(lpn) {
            self.sip_counts[victim.0 as usize] =
                self.sip_counts[victim.0 as usize].saturating_sub(1);
            self.sip_counts[gc_block.0 as usize] += 1;
        }
        Ok(took)
    }

    /// Foreground reclamation: collect until the pool rises above the GC
    /// scratch floor. Finishes any half-collected background victim first —
    /// it is the cheapest source of a free block.
    fn foreground_collect(&mut self, now: SimTime) -> Result<BgcOutcome, FtlError> {
        let mut outcome = BgcOutcome::default();
        if let Some(victim) = self.gc_in_progress.take() {
            let (duration, migrated) = self.collect_block(victim, now)?;
            outcome.duration += duration;
            outcome.blocks_erased += 1;
            outcome.pages_migrated += migrated;
        }
        while self.pool_is_at_floor() {
            let victim = self
                .select_victim(now, false)
                .ok_or(FtlError::NoReclaimableSpace)?;
            self.victim_index.remove(victim);
            let (duration, migrated) = self.collect_block(victim, now)?;
            outcome.duration += duration;
            outcome.blocks_erased += 1;
            outcome.pages_migrated += migrated;
        }
        Ok(outcome)
    }

    /// Migrates every remaining valid page out of `victim` and erases it.
    ///
    /// Dispatches to the batched [`copy_pages`](NandDevice::copy_pages)
    /// path (default) or the per-page reference loop; both produce
    /// byte-identical state and debug builds assert it on every call by
    /// replaying the collection on a cloned shadow FTL.
    fn collect_block(
        &mut self,
        victim: BlockId,
        now: SimTime,
    ) -> Result<(SimDuration, u64), FtlError> {
        #[cfg(debug_assertions)]
        let shadow = self.bulk_gc.then(|| self.oracle_shadow());
        let t0 = self.gc_copy_enabled.then(std::time::Instant::now);
        let result = if self.bulk_gc {
            self.collect_block_bulk(victim, now)
        } else {
            self.collect_block_looped(victim, now)
        };
        if let Some(t0) = t0 {
            self.gc_copy_wall += t0.elapsed();
        }
        #[cfg(debug_assertions)]
        if let Some(mut shadow) = shadow {
            let expected = shadow.collect_block_looped(victim, now);
            self.assert_matches_oracle(&shadow, &expected, &result);
        }
        result
    }

    /// Per-page reference implementation of [`collect_block`]: one
    /// read/program/invalidate round-trip per surviving page. Kept as the
    /// equivalence oracle for the bulk path and selectable at runtime via
    /// [`set_bulk_gc`](Self::set_bulk_gc) for A/B benchmarking.
    ///
    /// [`collect_block`]: Self::collect_block
    fn collect_block_looped(
        &mut self,
        victim: BlockId,
        now: SimTime,
    ) -> Result<(SimDuration, u64), FtlError> {
        debug_assert!(!self.is_free[victim.0 as usize], "victim must be in use");
        debug_assert!(
            self.active_user != Some(victim) && self.active_gc != Some(victim),
            "victim must not be an active block"
        );
        let mut duration = SimDuration::ZERO;
        let mut migrated = 0u64;
        while let Some((offset, lpn)) = {
            let next = self.device.block(victim).valid_lpns().next();
            next
        } {
            duration += self.migrate_page(victim, offset, lpn, now)?;
            migrated += 1;
            self.stats.gc_pages_migrated += 1;
        }
        debug_assert_eq!(
            self.sip_counts[victim.0 as usize], 0,
            "erased block retains SIP-listed valid pages"
        );
        if let Some(took) = self.erase_or_retire(victim, now) {
            duration += took;
        }
        Ok((duration, migrated))
    }

    /// Batched implementation of [`collect_block`]: snapshot the victim's
    /// valid pages once, then relocate them in destination-block-sized
    /// chunks through [`NandDevice::copy_pages`], applying mapping / SIP /
    /// recency updates per chunk instead of per page. Device operations
    /// (and therefore fault-model RNG draws, timings and counters) happen
    /// in exactly the order the per-page loop issues them.
    ///
    /// [`collect_block`]: Self::collect_block
    fn collect_block_bulk(
        &mut self,
        victim: BlockId,
        now: SimTime,
    ) -> Result<(SimDuration, u64), FtlError> {
        debug_assert!(!self.is_free[victim.0 as usize], "victim must be in use");
        debug_assert!(
            self.active_user != Some(victim) && self.active_gc != Some(victim),
            "victim must not be an active block"
        );
        let mut snapshot = std::mem::take(&mut self.gc_snapshot);
        snapshot.clear();
        {
            let geometry = self.device.geometry();
            let block = self.device.block(victim);
            snapshot.extend(
                block
                    .valid_lpns()
                    .map(|(offset, lpn)| (geometry.ppn(victim, offset), lpn)),
            );
        }
        let outcome = self.bulk_copy_out(victim, &snapshot, now);
        self.gc_snapshot = snapshot;
        let (mut duration, migrated) = outcome?;
        debug_assert_eq!(
            self.sip_counts[victim.0 as usize], 0,
            "erased block retains SIP-listed valid pages"
        );
        if let Some(took) = self.erase_or_retire(victim, now) {
            duration += took;
        }
        Ok((duration, migrated))
    }

    /// Copies every `snapshot` page out of `victim` into the GC write
    /// stream, one [`copy_pages`](NandDevice::copy_pages) call per
    /// destination block.
    ///
    /// The per-page loop interleaves each source read with GC-block
    /// allocation (read first, then allocate on demand), so the chunk
    /// boundary protocol mirrors that: the first read of each chunk is
    /// issued *before* ensuring a destination block, and a chunk that
    /// fills its destination mid-copy reports `pending_read` so the
    /// already-read source page is not re-read (nor its fault re-drawn)
    /// after the next block is opened.
    fn bulk_copy_out(
        &mut self,
        victim: BlockId,
        snapshot: &[(Ppn, Lpn)],
        now: SimTime,
    ) -> Result<(SimDuration, u64), FtlError> {
        let mut duration = SimDuration::ZERO;
        let mut migrated = 0u64;
        let mut idx = 0usize;
        let mut pending_read = false;
        while idx < snapshot.len() {
            if !pending_read {
                duration += self.gc_source_read(snapshot[idx].0)?;
            }
            let gc_block = self.ensure_active_gc_block()?;
            let mut dsts = std::mem::take(&mut self.gc_dst_scratch);
            dsts.clear();
            let copied = self
                .device
                .copy_pages(&snapshot[idx..], gc_block, true, &mut dsts);
            let out = match copied {
                Ok(out) => out,
                Err(e) => {
                    self.gc_dst_scratch = dsts;
                    return Err(e.into());
                }
            };
            debug_assert!(
                !self.victim_index.is_tracked(victim),
                "migrating pages out of a block still tracked as a candidate"
            );
            for (k, &new_ppn) in dsts.iter().enumerate() {
                let lpn = snapshot[idx + k].1;
                self.mapping[lpn.0 as usize] = Some(new_ppn);
                if self.sip.contains(lpn) {
                    self.sip_counts[victim.0 as usize] =
                        self.sip_counts[victim.0 as usize].saturating_sub(1);
                    self.sip_counts[gc_block.0 as usize] += 1;
                }
            }
            self.gc_dst_scratch = dsts;
            if out.copied > 0 {
                self.last_write[gc_block.0 as usize] = now;
            }
            self.stats.gc_read_failures += out.read_failures;
            self.stats.program_retries += out.program_retries;
            self.stats.gc_pages_migrated += out.copied as u64;
            duration += out.duration;
            migrated += out.copied as u64;
            idx += out.copied;
            pending_read = out.pending_read;
        }
        Ok((duration, migrated))
    }

    /// One GC source read with uncorrectable-read salvage, exactly as the
    /// per-page loop performs it (see [`migrate_page`](Self::migrate_page)
    /// for why errored data is relocated anyway).
    fn gc_source_read(&mut self, ppn: Ppn) -> Result<SimDuration, FtlError> {
        match self.device.read(ppn) {
            Ok(t) => Ok(t),
            Err(NandError::ReadFailed { .. }) => {
                self.stats.gc_read_failures += 1;
                Ok(self.config.timing().page_read_cost())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Clones the full FTL state (fault-model RNG position included) into
    /// a shadow instance pinned to the per-page path, so a bulk collection
    /// can be replayed and compared field-for-field.
    #[cfg(debug_assertions)]
    fn oracle_shadow(&self) -> Ftl {
        Ftl {
            config: self.config.clone(),
            device: self.device.clone(),
            mapping: self.mapping.clone(),
            free_blocks: self.free_blocks.clone(),
            is_free: self.is_free.clone(),
            active_user: self.active_user,
            active_hot: self.active_hot,
            active_gc: self.active_gc,
            gc_in_progress: self.gc_in_progress,
            lpn_last_write: self.lpn_last_write.clone(),
            is_retired: self.is_retired.clone(),
            last_write: self.last_write.clone(),
            sip: self.sip.clone(),
            sip_counts: self.sip_counts.clone(),
            sip_filter_enabled: self.sip_filter_enabled,
            // collect_block never consults the selector, so the shadow
            // does not need a clone of the (non-Clone) installed one.
            selector: Box::new(crate::GreedySelector),
            victim_index: self.victim_index.clone(),
            read_only: self.read_only,
            retired_pages: self.retired_pages,
            degrade_events: self.degrade_events.clone(),
            failed_reads: self.failed_reads.clone(),
            bulk_gc: false,
            gc_snapshot: Vec::new(),
            gc_dst_scratch: Vec::new(),
            gc_copy_enabled: false,
            gc_copy_wall: std::time::Duration::ZERO,
            stats: self.stats,
        }
    }

    /// Field-for-field comparison of the bulk collection result against
    /// the shadow replay of the per-page loop.
    #[cfg(debug_assertions)]
    fn assert_matches_oracle(
        &self,
        shadow: &Ftl,
        expected: &Result<(SimDuration, u64), FtlError>,
        actual: &Result<(SimDuration, u64), FtlError>,
    ) {
        assert_eq!(
            format!("{actual:?}"),
            format!("{expected:?}"),
            "bulk collect_block result diverged from per-page loop"
        );
        assert_eq!(self.stats, shadow.stats, "FTL stats diverged");
        assert_eq!(
            self.device.stats(),
            shadow.device.stats(),
            "device op stats diverged"
        );
        assert_eq!(
            self.device.total_valid_pages(),
            shadow.device.total_valid_pages()
        );
        assert_eq!(
            self.device.total_invalid_pages(),
            shadow.device.total_invalid_pages()
        );
        assert_eq!(
            self.device.total_free_pages(),
            shadow.device.total_free_pages()
        );
        assert_eq!(self.free_blocks, shadow.free_blocks, "free pool diverged");
        assert_eq!(self.is_free, shadow.is_free);
        assert_eq!(self.active_user, shadow.active_user);
        assert_eq!(self.active_hot, shadow.active_hot);
        assert_eq!(self.active_gc, shadow.active_gc);
        assert_eq!(self.gc_in_progress, shadow.gc_in_progress);
        assert_eq!(self.read_only, shadow.read_only);
        assert_eq!(self.retired_pages, shadow.retired_pages);
        assert_eq!(self.is_retired, shadow.is_retired);
        assert_eq!(self.degrade_events, shadow.degrade_events);
        assert_eq!(self.last_write, shadow.last_write, "recency diverged");
        assert_eq!(self.sip_counts, shadow.sip_counts, "SIP counts diverged");
        let mine: Vec<_> = self.victim_index.iter_ids().collect();
        let theirs: Vec<_> = shadow.victim_index.iter_ids().collect();
        assert_eq!(mine, theirs, "victim index diverged");
        for b in self.device.geometry().block_ids() {
            let (a, e) = (self.device.block(b), shadow.device.block(b));
            assert_eq!(a.erase_count(), e.erase_count(), "wear diverged on {b}");
            assert_eq!(a.next_free_offset(), e.next_free_offset());
            assert_eq!(a.valid_pages(), e.valid_pages(), "valid diverged on {b}");
            assert_eq!(a.invalid_pages(), e.invalid_pages());
        }
        // Only pages named in the snapshot can have remapped; checking
        // exactly those keeps the oracle O(blocks + migrated pages)
        // instead of O(user pages).
        for &(_, lpn) in &self.gc_snapshot {
            assert_eq!(
                self.mapping[lpn.0 as usize], shadow.mapping[lpn.0 as usize],
                "mapping diverged for {lpn:?}"
            );
        }
    }

    /// Erases `victim` and returns it to the free pool, or — when the
    /// block has exceeded its endurance limit or the erase itself failed —
    /// retires it as a bad block (capacity shrinks by one block) and
    /// returns `None`.
    fn erase_or_retire(&mut self, victim: BlockId, now: SimTime) -> Option<SimDuration> {
        debug_assert!(
            !self.victim_index.is_tracked(victim),
            "erasing a block still tracked as a candidate"
        );
        match self.device.erase(victim) {
            Ok(took) => {
                self.sip_counts[victim.0 as usize] = 0;
                self.free_blocks.push(victim);
                self.is_free[victim.0 as usize] = true;
                Some(took)
            }
            Err(NandError::BlockWornOut { .. } | NandError::EraseFailed { .. }) => {
                self.retire_block(victim, now);
                None
            }
            Err(e) => panic!("erase of selected victim failed: {e}"),
        }
    }

    /// Permanently removes `victim` from circulation as a bad block and
    /// records the capacity loss on the failure timeline. When the loss
    /// leaves too little writable space to keep absorbing host writes, the
    /// device transitions to read-only degraded mode.
    fn retire_block(&mut self, victim: BlockId, now: SimTime) {
        self.sip_counts[victim.0 as usize] = 0;
        self.is_retired[victim.0 as usize] = true;
        self.stats.retired_blocks += 1;
        // Victims are fully collected before erase, so every page of the
        // block sits in the device's invalid tally — and stays there
        // forever. Track the loss so space accounting can exclude it.
        self.retired_pages += u64::from(self.config.geometry().pages_per_block());
        self.degrade_events.push(DegradeEvent {
            time: now,
            kind: DegradeKind::BlockRetired(victim),
        });
        self.update_degraded_state(now);
    }

    /// Checks whether block retirements have shrunk the device below the
    /// minimum writable footprint: enough live blocks to hold all valid
    /// data plus the GC scratch reserve plus one block of write headroom.
    /// Below that, GC can no longer turn over blocks and the device goes
    /// read-only.
    fn update_degraded_state(&mut self, now: SimTime) {
        if self.read_only {
            return;
        }
        let geometry = self.config.geometry();
        let ppb = u64::from(geometry.pages_per_block());
        // Derive the retired count from `retired_pages`, not from
        // `stats.retired_blocks`: the stats counter is zeroed by
        // [`reset_counters`](Ftl::reset_counters) after aging pre-fill,
        // while retirement is permanent device state.
        let live_blocks = u64::from(geometry.blocks()) - self.retired_pages / ppb;
        let valid_pages = self.device.total_valid_pages();
        let reserve_blocks = u64::from(self.config.gc_reserve_blocks());
        if live_blocks * ppb < valid_pages + (reserve_blocks + 1) * ppb {
            self.enter_read_only(now);
        }
    }

    /// Idempotent transition into read-only degraded mode.
    fn enter_read_only(&mut self, now: SimTime) {
        if self.read_only {
            return;
        }
        self.read_only = true;
        self.degrade_events.push(DegradeEvent {
            time: now,
            kind: DegradeKind::ReadOnly,
        });
    }

    /// Number of blocks retired as bad (endurance exceeded or erase
    /// failed).
    #[must_use]
    pub fn retired_blocks(&self) -> u64 {
        self.stats.retired_blocks
    }

    /// Pages permanently lost to retired blocks.
    #[must_use]
    pub fn retired_pages(&self) -> u64 {
        self.retired_pages
    }

    /// `true` once the device has entered read-only degraded mode: writes
    /// fail with [`FtlError::ReadOnly`], reads keep working.
    #[must_use]
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// The failure timeline: every block retirement plus the read-only
    /// transition, in event order. Deterministic for a given fault seed
    /// and operation stream.
    #[must_use]
    pub fn degrade_events(&self) -> &[DegradeEvent] {
        &self.degrade_events
    }

    /// LPNs whose most recent [`host_read_batch`](Self::host_read_batch)
    /// attempt came back uncorrectable, in batch order. Valid until the
    /// next batched read; a mirror layer re-reads these from the surviving
    /// replica.
    #[must_use]
    pub fn failed_read_lpns(&self) -> &[Lpn] {
        &self.failed_reads
    }

    /// Chooses the next GC victim. For background GC with a non-empty SIP
    /// list and filtering enabled, candidates whose soon-to-be-invalidated
    /// fraction exceeds the configured threshold are avoided; if that
    /// filter would leave no candidate, the unfiltered choice is used.
    fn select_victim(&mut self, now: SimTime, background: bool) -> Option<BlockId> {
        #[cfg(debug_assertions)]
        self.debug_validate_victim_index();
        let unfiltered = self.run_selector(now, None)?;
        if !background || !self.sip_filter_enabled || self.sip.is_empty() {
            return Some(unfiltered);
        }

        self.stats.sip_eligible_selections += 1;
        let threshold = self.config.sip_filter_threshold_permille();
        let choice = self
            .run_selector(now, Some(threshold))
            .unwrap_or(unfiltered);
        if choice != unfiltered {
            self.stats.sip_filtered_selections += 1;
        }
        Some(choice)
    }

    /// Runs the installed selector over the victim index. With a SIP
    /// threshold, candidates whose soon-to-be-invalidated fraction exceeds
    /// it are withheld from the selector.
    ///
    /// Frontier selectors ([`VictimSelector::uses_min_valid_frontier`])
    /// see only the lowest eligible valid-count bucket — an O(1) hop per
    /// selection instead of the O(blocks) scan this replaces. Other
    /// selectors iterate the tracked set in block-id order, reproducing
    /// the exact candidate sequence (and therefore the exact choice, RNG
    /// draws included) of a full device scan.
    fn run_selector(&mut self, now: SimTime, sip_threshold: Option<u64>) -> Option<BlockId> {
        let selector = &mut self.selector;
        let device = &self.device;
        let index = &self.victim_index;
        let last_write = &self.last_write;
        let sip_counts = &self.sip_counts;
        let passes = |b: BlockId, valid: u32| match sip_threshold {
            None => true,
            Some(t) => u64::from(sip_counts[b.0 as usize]) * 1000 <= u64::from(valid) * t,
        };
        let info = |b: BlockId| {
            let block = device.block(b);
            BlockInfo {
                id: b,
                valid: block.valid_pages(),
                invalid: block.invalid_pages(),
                pages: block.pages(),
                erase_count: block.erase_count(),
                last_write: last_write[b.0 as usize],
                sip_valid: sip_counts[b.0 as usize],
            }
        };
        if selector.uses_min_valid_frontier() {
            // The bucket at pages_per_block holds fully-valid blocks,
            // which have nothing to reclaim and are never picked.
            for valid in 0..index.pages_per_block() {
                let bucket = index.bucket(valid);
                if !bucket.iter().any(|&b| passes(b, valid)) {
                    continue;
                }
                let mut frontier = bucket
                    .iter()
                    .copied()
                    .filter(|&b| passes(b, valid))
                    .map(info);
                return selector.select(&mut frontier, now);
            }
            None
        } else {
            let mut candidates = index
                .iter_ids()
                .filter(|&(b, valid)| passes(b, valid))
                .map(|(b, _)| info(b));
            selector.select(&mut candidates, now)
        }
    }

    /// Debug-build cross-check: the incrementally maintained victim index
    /// must agree — membership and valid counts — with a full device scan
    /// over the candidate filter it replaces. Runs on every victim
    /// selection and wear-leveling pass in tests.
    #[cfg(debug_assertions)]
    fn debug_validate_victim_index(&self) {
        let expected: Vec<(BlockId, u32)> = self
            .device
            .geometry()
            .block_ids()
            .filter(|b| {
                !self.is_free[b.0 as usize]
                    && !self.is_retired[b.0 as usize]
                    && self.active_user != Some(*b)
                    && self.active_hot != Some(*b)
                    && self.active_gc != Some(*b)
                    && self.gc_in_progress != Some(*b)
            })
            .map(|b| (b, self.device.block(b).valid_pages()))
            .collect();
        let actual: Vec<(BlockId, u32)> = self.victim_index.iter_ids().collect();
        assert_eq!(
            actual, expected,
            "victim index diverged from the full candidate scan"
        );
        for &(b, _) in &actual {
            debug_assert!(
                self.device.block(b).is_full(),
                "tracked candidate {b} is not sealed"
            );
        }
    }

    // ------------------------------------------------------------------
    // Wear leveling
    // ------------------------------------------------------------------

    /// One static wear-leveling pass: when the erase-count spread exceeds
    /// the configured threshold, the coldest sealed block's data is
    /// relocated into the most-worn free block and the cold block is
    /// erased, putting its low-wear cells back into circulation.
    pub fn wear_level(&mut self, now: SimTime) -> Result<WearLevelOutcome, FtlError> {
        let wear = self.device.wear_report();
        if wear.max - wear.min <= self.config.wear_level_threshold() {
            return Ok(WearLevelOutcome::default());
        }
        // Coldest sealed candidate: minimum erase count.
        #[cfg(debug_assertions)]
        self.debug_validate_victim_index();
        let Some((coldest, _)) = self
            .victim_index
            .iter_ids()
            .min_by_key(|&(b, _)| (self.device.block(b).erase_count(), b))
        else {
            return Ok(WearLevelOutcome::default());
        };
        // Steer the relocation into the most-worn free block by making it
        // the active GC block for this pass.
        if let Some(hot_idx) = (0..self.free_blocks.len()).max_by_key(|&i| {
            let b = self.free_blocks[i];
            (self.device.block(b).erase_count(), b)
        }) {
            // Only retarget when no GC block is currently open.
            if self.active_gc.is_none()
                || self
                    .active_gc
                    .is_some_and(|b| self.device.block(b).next_free_offset().is_none())
            {
                let hot = self.free_blocks.swap_remove(hot_idx);
                self.is_free[hot.0 as usize] = false;
                if let Some(full) = self.active_gc.replace(hot) {
                    self.seal(full);
                }
            }
        }
        self.victim_index.remove(coldest);
        let (duration, moved) = self.collect_block(coldest, now)?;
        self.stats.wear_level_migrations += moved;
        self.stats.wear_level_blocks += 1;
        Ok(WearLevelOutcome {
            duration,
            performed: true,
            moved_pages: moved,
        })
    }

    // ------------------------------------------------------------------
    // SIP list
    // ------------------------------------------------------------------

    /// Installs the soon-to-be-invalidated page list delivered by the
    /// host-side predictor, replacing the previous one. Per-block SIP
    /// counts are recomputed from the current mapping.
    ///
    /// Returns the displaced list so the caller can
    /// [`clear`](SipList::clear) and refill it on the next poll — the
    /// engine ping-pongs two bitmaps this way and the steady state
    /// allocates nothing.
    pub fn install_sip_list(&mut self, sip: SipList) -> SipList {
        self.sip_counts.fill(0);
        for lpn in sip.iter() {
            if let Some(Some(ppn)) = self.mapping.get(lpn.0 as usize) {
                let b = self.device.geometry().block_of(*ppn);
                self.sip_counts[b.0 as usize] += 1;
            }
        }
        std::mem::replace(&mut self.sip, sip)
    }

    /// [`install_sip_list`](Self::install_sip_list) discarding the
    /// displaced list, for callers that build a fresh list each time.
    pub fn set_sip_list(&mut self, sip: SipList) {
        let _ = self.install_sip_list(sip);
    }

    /// Enables or disables SIP-aware victim filtering (for the ablation
    /// study; the paper's JIT-GC has it on, ADP-GC has it off).
    pub fn set_sip_filter_enabled(&mut self, enabled: bool) {
        self.sip_filter_enabled = enabled;
    }

    /// `true` when SIP-aware victim filtering is active.
    #[must_use]
    pub fn sip_filter_enabled(&self) -> bool {
        self.sip_filter_enabled
    }

    // ------------------------------------------------------------------
    // Space accounting and accessors
    // ------------------------------------------------------------------

    /// Pages the host can write before foreground GC becomes necessary:
    /// all free pages minus the GC scratch reserve.
    #[must_use]
    pub fn free_pages(&self) -> u64 {
        let reserve = u64::from(self.config.gc_reserve_blocks())
            * u64::from(self.config.geometry().pages_per_block());
        self.device.total_free_pages().saturating_sub(reserve)
    }

    /// [`free_pages`](Self::free_pages) in bytes — the `C_free` the JIT-GC
    /// manager polls over the extended host interface.
    #[must_use]
    pub fn free_capacity(&self) -> ByteSize {
        self.config.geometry().page_size() * self.free_pages()
    }

    /// The largest free capacity background GC could ever produce right
    /// now: current free space plus every reclaimable (invalid) page.
    /// Policies must not target beyond this — the paper's `C_resv ≤
    /// C_unused + C_OP` restriction, which "avoids useless BGC operations
    /// when an SSD is filled with a large amount of user data".
    /// Invalid pages in retired blocks are *not* reclaimable — the block
    /// will never be erased again — so they are excluded here; counting
    /// them would let a policy set a `C_resv` target BGC can never reach
    /// and spin on useless collection attempts.
    #[must_use]
    pub fn reclaimable_capacity(&self) -> ByteSize {
        self.config.geometry().page_size()
            * (self.free_pages()
                + self
                    .device
                    .total_invalid_pages()
                    .saturating_sub(self.retired_pages))
    }

    /// Zeroes every statistics counter (FTL and NAND operation counters)
    /// while leaving device *state* — mapping, page states, per-block wear
    /// — untouched. Used after aging pre-fill so measurements cover only
    /// the steady-state phase.
    pub fn reset_counters(&mut self) {
        self.stats = FtlStats::default();
        self.device.reset_stats();
        // Pre-fill wear is setup, not measurement: drop its degradation
        // timeline entries so reports cover only the steady-state phase.
        // The `read_only` flag and per-block retirement state persist —
        // they are device state, not counters.
        self.degrade_events.clear();
    }

    /// The over-provisioning capacity `C_OP`.
    #[must_use]
    pub fn op_capacity(&self) -> ByteSize {
        self.config.op_capacity()
    }

    /// The configuration this FTL was built with.
    #[must_use]
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Read-only view of the underlying NAND device.
    #[must_use]
    pub fn device(&self) -> &NandDevice {
        &self.device
    }

    /// FTL-level statistics.
    #[must_use]
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// Current Write Amplification Factor, or `None` before the first host
    /// write.
    #[must_use]
    pub fn waf(&self) -> Option<f64> {
        self.stats.waf(self.device.stats().programs)
    }

    /// The physical location currently mapped for `lpn`, if any.
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] for a bad address.
    pub fn lookup(&self, lpn: Lpn) -> Result<Option<Ppn>, FtlError> {
        self.check_lpn(lpn)?;
        Ok(self.mapping[lpn.0 as usize])
    }

    /// The name of the installed victim-selection policy.
    #[must_use]
    pub fn victim_policy(&self) -> &'static str {
        self.selector.name()
    }

    /// Selects between the batched full-block collection path (`true`,
    /// the default) and the per-page reference loop. Both produce
    /// byte-identical simulation state; the switch exists for A/B
    /// benchmarking and the equivalence tests.
    pub fn set_bulk_gc(&mut self, enabled: bool) {
        self.bulk_gc = enabled;
    }

    /// `true` when full-block collections use the batched
    /// [`copy_pages`](NandDevice::copy_pages) path.
    #[must_use]
    pub fn bulk_gc(&self) -> bool {
        self.bulk_gc
    }

    /// Starts wall-clock accounting of full-block GC copy work; the total
    /// is read back with [`gc_copy_wall`](Self::gc_copy_wall). Measurement
    /// only — simulated behaviour is unaffected.
    pub fn enable_gc_copy_profiling(&mut self) {
        self.gc_copy_enabled = true;
    }

    /// Host wall-clock time spent inside full-block collections since
    /// profiling was enabled (zero when it never was).
    #[must_use]
    pub fn gc_copy_wall(&self) -> std::time::Duration {
        self.gc_copy_wall
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_lpn(&self, lpn: Lpn) -> Result<(), FtlError> {
        if lpn.0 < self.config.user_pages() {
            Ok(())
        } else {
            Err(FtlError::LpnOutOfRange {
                lpn,
                user_pages: self.config.user_pages(),
            })
        }
    }

    /// Classifies a write as hot (rewritten within the configured window)
    /// when hot/cold stream separation is enabled.
    fn classify_hot(&self, lpn: Lpn, now: SimTime) -> bool {
        let Some(times) = self.lpn_last_write.as_ref() else {
            return false;
        };
        // Never-written pages are cold by definition (mapping check, not a
        // timestamp sentinel — a legitimate write at t = 0 must count).
        if self.mapping[lpn.0 as usize].is_none() {
            return false;
        }
        now.saturating_since(times[lpn.0 as usize]) <= self.config.hot_window()
    }

    fn needs_active_block(&self, hot: bool) -> bool {
        let active = if hot {
            self.active_hot
        } else {
            self.active_user
        };
        match active {
            None => true,
            Some(b) => self.device.block(b).is_full(),
        }
    }

    /// `true` when allocating another user block would eat into the GC
    /// scratch reserve — the foreground-GC trigger.
    fn pool_is_at_floor(&self) -> bool {
        self.free_blocks.len() <= self.config.gc_reserve_blocks() as usize
    }

    fn ensure_active_block(&mut self, hot: bool) -> Result<BlockId, FtlError> {
        if !self.needs_active_block(hot) {
            let active = if hot {
                self.active_hot
            } else {
                self.active_user
            };
            return Ok(active.expect("checked present"));
        }
        let block = self
            .allocate_least_worn()
            .ok_or(FtlError::NoReclaimableSpace)?;
        let sealed = if hot {
            self.active_hot.replace(block)
        } else {
            self.active_user.replace(block)
        };
        if let Some(full) = sealed {
            self.seal(full);
        }
        Ok(block)
    }

    fn ensure_active_gc_block(&mut self) -> Result<BlockId, FtlError> {
        let needs = match self.active_gc {
            None => true,
            Some(b) => self.device.block(b).is_full(),
        };
        if needs {
            let block = self
                .allocate_least_worn()
                .ok_or(FtlError::NoReclaimableSpace)?;
            if let Some(full) = self.active_gc.replace(block) {
                self.seal(full);
            }
        }
        Ok(self.active_gc.expect("just ensured"))
    }

    /// Registers a just-closed (full) active block as a GC candidate.
    fn seal(&mut self, block: BlockId) {
        debug_assert!(
            self.device.block(block).is_full(),
            "sealing a block that still has free pages"
        );
        self.victim_index
            .insert(block, self.device.block(block).valid_pages());
    }

    fn allocate_least_worn(&mut self) -> Option<BlockId> {
        let idx = (0..self.free_blocks.len()).min_by_key(|&i| {
            let b = self.free_blocks[i];
            (self.device.block(b).erase_count(), b)
        })?;
        let block = self.free_blocks.swap_remove(idx);
        self.is_free[block.0 as usize] = false;
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GreedySelector;

    fn small_config(op_permille: u64) -> FtlConfig {
        FtlConfig::builder()
            .user_pages(64)
            .op_permille(op_permille)
            .pages_per_block(8)
            .page_size_bytes(4096)
            .gc_reserve_blocks(2)
            .build()
    }

    fn small_ftl() -> Ftl {
        Ftl::new(small_config(250), Box::new(GreedySelector))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut ftl = small_ftl();
        ftl.host_write(Lpn(5), t(0)).expect("in range");
        let read = ftl.host_read(Lpn(5), t(1)).expect("mapped");
        assert!(read.duration.as_micros() > 0);
        assert_eq!(ftl.stats().host_pages_written, 1);
        assert_eq!(ftl.stats().host_pages_read, 1);
    }

    #[test]
    fn read_unmapped_fails() {
        let mut ftl = small_ftl();
        assert!(matches!(
            ftl.host_read(Lpn(5), t(0)),
            Err(FtlError::LpnUnmapped { .. })
        ));
    }

    #[test]
    fn out_of_range_lpn_fails() {
        let mut ftl = small_ftl();
        assert!(matches!(
            ftl.host_write(Lpn(64), t(0)),
            Err(FtlError::LpnOutOfRange { .. })
        ));
        assert!(matches!(
            ftl.host_read(Lpn(1000), t(0)),
            Err(FtlError::LpnOutOfRange { .. })
        ));
        assert!(matches!(
            ftl.trim(Lpn(64), t(0)),
            Err(FtlError::LpnOutOfRange { .. })
        ));
    }

    #[test]
    fn overwrite_invalidates_old_copy() {
        let mut ftl = small_ftl();
        ftl.host_write(Lpn(3), t(0)).expect("in range");
        let first = ftl.lookup(Lpn(3)).expect("in range").expect("mapped");
        ftl.host_write(Lpn(3), t(1)).expect("in range");
        let second = ftl.lookup(Lpn(3)).expect("in range").expect("mapped");
        assert_ne!(first, second);
        assert_eq!(ftl.device().total_invalid_pages(), 1);
        assert_eq!(ftl.device().total_valid_pages(), 1);
    }

    #[test]
    fn sustained_overwrites_trigger_foreground_gc() {
        let mut ftl = small_ftl();
        let mut saw_fgc = false;
        // Fill the whole space once, then hammer only the even LPNs: every
        // victim block keeps half its pages valid, so GC must migrate.
        for lpn in 0..64u64 {
            ftl.host_write(Lpn(lpn), t(0)).expect("in range");
        }
        for round in 1..40u64 {
            for lpn in (0..64u64).step_by(2) {
                let out = ftl.host_write(Lpn(lpn), t(round)).expect("in range");
                saw_fgc |= out.foreground_gc;
            }
        }
        assert!(saw_fgc, "foreground GC never fired");
        assert!(ftl.stats().fgc_invocations > 0);
        assert!(ftl.stats().gc_pages_migrated > 0);
        let waf = ftl.waf().expect("host writes happened");
        assert!(waf > 1.0, "GC must amplify writes, waf={waf}");
    }

    #[test]
    fn background_gc_prevents_foreground_gc() {
        // Spare physical capacity above the GC reserve is 16 pages, so a
        // 16-page burst followed by generous idle-time BGC must never hit
        // foreground GC.
        let mut ftl = small_ftl();
        let mut fgc_count = 0u64;
        for round in 0..80u64 {
            for i in 0..16u64 {
                let lpn = (round * 16 + i) % 64;
                let out = ftl.host_write(Lpn(lpn), t(round)).expect("in range");
                fgc_count += u64::from(out.foreground_gc);
            }
            ftl.background_collect(t(round), SimDuration::from_secs(10), None);
        }
        assert_eq!(fgc_count, 0, "BGC should have absorbed all reclamation");
        assert!(ftl.stats().bgc_blocks > 0);
        assert_eq!(ftl.stats().fgc_invocations, 0);
    }

    #[test]
    fn bgc_respects_budget() {
        let mut ftl = small_ftl();
        for round in 0..10u64 {
            for lpn in 0..64u64 {
                ftl.host_write(Lpn(lpn), t(round)).expect("in range");
            }
        }
        let tiny = SimDuration::from_micros(1);
        let out = ftl.background_collect(t(100), tiny, None);
        assert_eq!(out.blocks_erased, 0, "budget too small for any block");
        assert!(out.duration <= tiny);
    }

    #[test]
    fn bgc_stops_at_target() {
        let mut ftl = small_ftl();
        for round in 0..10u64 {
            for lpn in 0..64u64 {
                ftl.host_write(Lpn(lpn), t(round)).expect("in range");
            }
        }
        let before = ftl.free_pages();
        let target = before + 8; // one block's worth
        let out = ftl.background_collect(t(100), SimDuration::from_secs(100), Some(target));
        assert!(ftl.free_pages() >= target);
        // Should not have collected far past the target.
        assert!(out.blocks_erased <= 3, "erased {}", out.blocks_erased);
    }

    #[test]
    fn free_pages_accounting_is_conserved() {
        let mut ftl = small_ftl();
        let total = ftl.device().geometry().total_pages();
        for round in 0..5u64 {
            for lpn in 0..64u64 {
                ftl.host_write(Lpn(lpn), t(round)).expect("in range");
            }
            let dev = ftl.device();
            assert_eq!(
                dev.total_valid_pages() + dev.total_invalid_pages() + dev.total_free_pages(),
                total
            );
            assert_eq!(dev.total_valid_pages(), 64);
        }
    }

    #[test]
    fn trim_releases_space_without_migration() {
        let mut ftl = small_ftl();
        ftl.host_write(Lpn(9), t(0)).expect("in range");
        ftl.trim(Lpn(9), t(1)).expect("in range");
        assert_eq!(ftl.lookup(Lpn(9)).expect("in range"), None);
        assert_eq!(ftl.device().total_valid_pages(), 0);
        assert!(matches!(
            ftl.host_read(Lpn(9), t(2)),
            Err(FtlError::LpnUnmapped { .. })
        ));
        // Trimming again is a no-op.
        ftl.trim(Lpn(9), t(3)).expect("in range");
        assert_eq!(ftl.stats().trims, 2);
    }

    #[test]
    fn sip_list_counts_follow_mapping() {
        let mut ftl = small_ftl();
        for lpn in 0..16u64 {
            ftl.host_write(Lpn(lpn), t(0)).expect("in range");
        }
        let sip: SipList = (0..8u64).map(Lpn).collect();
        ftl.set_sip_list(sip);
        // Overwriting a SIP page removes it from the list.
        ftl.host_write(Lpn(0), t(1)).expect("in range");
        ftl.host_write(Lpn(999).min(Lpn(15)), t(1))
            .expect("in range");
        // Re-install to verify recomputation path too.
        let sip2: SipList = (0..4u64).map(Lpn).collect();
        ftl.set_sip_list(sip2);
        // No panic and counts consistent: total sip_valid equals mapped SIP pages.
        let total: u32 = ftl.sip_counts.iter().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn sip_filter_redirects_bgc_victims() {
        // Two sealed blocks with equal valid counts; the one full of
        // SIP-listed pages must be avoided.
        let mut ftl = small_ftl();
        // Fill blocks deterministically: 8 pages per block.
        // Block A: lpns 0..8, Block B: lpns 8..16.
        for lpn in 0..16u64 {
            ftl.host_write(Lpn(lpn), t(0)).expect("in range");
        }
        // Invalidate half of each block so both are equally attractive,
        // but make block A's survivors soon-to-be-invalidated.
        for lpn in [0u64, 1, 2, 3, 8, 9, 10, 11] {
            ftl.host_write(Lpn(lpn), t(1)).expect("in range");
        }
        let sip: SipList = [Lpn(4), Lpn(5), Lpn(6), Lpn(7)].into_iter().collect();
        ftl.set_sip_list(sip);
        let out =
            ftl.background_collect(t(2), SimDuration::from_secs(1), Some(ftl.free_pages() + 4));
        assert!(out.blocks_erased >= 1);
        assert!(
            ftl.stats().sip_filtered_selections >= 1,
            "SIP filter should have redirected the greedy choice"
        );
        // The redirected victim held the four live non-SIP pages, which
        // were migrated; the SIP'd pages (4..8) stayed put.
        assert_eq!(ftl.stats().gc_pages_migrated, 4);
    }

    #[test]
    fn sip_filter_disabled_means_no_filtering() {
        let mut ftl = small_ftl();
        ftl.set_sip_filter_enabled(false);
        assert!(!ftl.sip_filter_enabled());
        for lpn in 0..16u64 {
            ftl.host_write(Lpn(lpn), t(0)).expect("in range");
        }
        for lpn in [0u64, 1, 2, 3, 8, 9, 10, 11] {
            ftl.host_write(Lpn(lpn), t(1)).expect("in range");
        }
        ftl.set_sip_list([Lpn(4), Lpn(5), Lpn(6), Lpn(7)].into_iter().collect());
        ftl.background_collect(t(2), SimDuration::from_secs(1), None);
        assert_eq!(ftl.stats().sip_eligible_selections, 0);
        assert_eq!(ftl.stats().sip_filtered_selections, 0);
    }

    #[test]
    fn free_capacity_shrinks_with_writes() {
        let mut ftl = small_ftl();
        let before = ftl.free_capacity();
        ftl.host_write(Lpn(0), t(0)).expect("in range");
        assert!(ftl.free_capacity() < before);
        assert_eq!(
            before - ftl.free_capacity(),
            ftl.config().geometry().page_size()
        );
    }

    #[test]
    fn op_capacity_matches_config() {
        let ftl = small_ftl();
        assert_eq!(ftl.op_capacity(), ftl.config().op_capacity());
        assert_eq!(ftl.op_capacity(), ByteSize::bytes(16 * 4096));
    }

    #[test]
    fn wear_level_reduces_spread() {
        let mut ftl = Ftl::new(
            FtlConfig::builder()
                .user_pages(64)
                .op_permille(250)
                .pages_per_block(8)
                .gc_reserve_blocks(2)
                .wear_level_threshold(4)
                .build(),
            Box::new(GreedySelector),
        );
        // Create heavy uneven wear: hot small working set.
        for round in 0..200u64 {
            for lpn in 0..16u64 {
                ftl.host_write(Lpn(lpn), t(round)).expect("in range");
            }
            // Also keep cold data in place.
            if round == 0 {
                for lpn in 16..64u64 {
                    ftl.host_write(Lpn(lpn), t(round)).expect("in range");
                }
            }
            ftl.background_collect(t(round), SimDuration::from_secs(1), None);
        }
        let before = ftl.device().wear_report();
        if before.max - before.min > 4 {
            let out = ftl.wear_level(t(1000)).expect("wear level");
            assert!(out.performed);
            assert!(ftl.stats().wear_level_blocks > 0);
        }
    }

    #[test]
    fn hot_cold_streams_separate_blocks() {
        let mut ftl = Ftl::new(
            FtlConfig::builder()
                .user_pages(64)
                .op_permille(250)
                .pages_per_block(8)
                .gc_reserve_blocks(2)
                .hot_cold_streams(SimDuration::from_secs(10))
                .build(),
            Box::new(GreedySelector),
        );
        // First writes are cold (no history).
        for lpn in 0..8u64 {
            ftl.host_write(Lpn(lpn), t(0)).expect("in range");
        }
        assert_eq!(ftl.stats().hot_stream_pages, 0);
        // Immediate rewrites are hot and must land in a different block.
        for lpn in 0..4u64 {
            ftl.host_write(Lpn(lpn), t(1)).expect("in range");
        }
        assert_eq!(ftl.stats().hot_stream_pages, 4);
        let cold_block = ftl
            .device()
            .geometry()
            .block_of(ftl.lookup(Lpn(5)).expect("in range").expect("mapped"));
        let hot_block = ftl
            .device()
            .geometry()
            .block_of(ftl.lookup(Lpn(0)).expect("in range").expect("mapped"));
        assert_ne!(cold_block, hot_block, "hot rewrites share the cold block");
        // A rewrite outside the hot window is cold again.
        ftl.host_write(Lpn(0), t(60)).expect("in range");
        assert_eq!(ftl.stats().hot_stream_pages, 4);
    }

    #[test]
    fn hot_cold_disabled_by_default() {
        let mut ftl = small_ftl();
        ftl.host_write(Lpn(0), t(0)).expect("in range");
        ftl.host_write(Lpn(0), t(1)).expect("in range");
        assert_eq!(ftl.stats().hot_stream_pages, 0);
        assert!(!ftl.config().hot_cold_streams());
    }

    #[test]
    fn worn_out_blocks_are_retired_not_reused() {
        let mut ftl = Ftl::new(
            FtlConfig::builder()
                .user_pages(64)
                .op_permille(500) // generous OP so retirement is survivable
                .pages_per_block(8)
                .gc_reserve_blocks(2)
                .endurance_limit(3)
                .build(),
            Box::new(GreedySelector),
        );
        // Hammer hot pages so GC cycles blocks until some wear out.
        let mut round = 0u64;
        while ftl.retired_blocks() == 0 && round < 2_000 {
            for lpn in 0..16u64 {
                ftl.host_write(Lpn(lpn), t(round)).expect("in range");
            }
            ftl.background_collect(t(round), SimDuration::from_secs(1), None);
            round += 1;
        }
        assert!(
            ftl.retired_blocks() > 0,
            "no block retired after {round} rounds"
        );
        // The FTL keeps serving I/O after retirements.
        for lpn in 0..16u64 {
            ftl.host_write(Lpn(lpn), t(round + 1))
                .expect("still serving");
            assert!(ftl.host_read(Lpn(lpn), t(round + 1)).is_ok());
        }
        // Accounting: retired blocks are neither free nor candidates, and
        // every mapped page is still exactly once valid.
        assert_eq!(ftl.device().total_valid_pages(), 16);
    }

    #[test]
    fn endurance_limit_is_optional() {
        let ftl = small_ftl();
        assert_eq!(ftl.config().endurance_limit(), None);
        assert_eq!(ftl.retired_blocks(), 0);
    }

    #[test]
    fn victim_policy_name_is_exposed() {
        let ftl = small_ftl();
        assert_eq!(ftl.victim_policy(), "greedy");
    }

    #[test]
    fn write_batch_matches_looped_writes() {
        let looped = || {
            let mut ftl = small_ftl();
            let mut fgc = 0u64;
            let mut dur = SimDuration::ZERO;
            for round in 0..20u64 {
                for lpn in 0..64u64 {
                    let out = ftl.host_write(Lpn((lpn * 5) % 64), t(round)).expect("ok");
                    fgc += u64::from(out.foreground_gc);
                    dur += out.duration;
                }
            }
            (*ftl.stats(), *ftl.device().stats(), fgc, dur)
        };
        let batched = || {
            let mut ftl = small_ftl();
            let mut fgc = 0u64;
            let mut dur = SimDuration::ZERO;
            let lpns: Vec<Lpn> = (0..64u64).map(|l| Lpn((l * 5) % 64)).collect();
            for round in 0..20u64 {
                let out = ftl.host_write_batch(&lpns, t(round)).expect("ok");
                fgc += out.fgc_writes;
                dur += out.duration;
            }
            (*ftl.stats(), *ftl.device().stats(), fgc, dur)
        };
        assert_eq!(looped(), batched());
    }

    #[test]
    fn read_batch_matches_looped_reads_and_counts_unmapped() {
        let mut ftl = small_ftl();
        for lpn in 0..8u64 {
            ftl.host_write(Lpn(lpn), t(0)).expect("ok");
        }
        // 4..12: half mapped, half never written.
        let lpns: Vec<Lpn> = (4..12u64).map(Lpn).collect();
        let mut looped_dur = SimDuration::ZERO;
        let mut looped_unmapped = 0u64;
        for &lpn in &lpns {
            match ftl.host_read(lpn, t(1)) {
                Ok(r) => looped_dur += r.duration,
                Err(FtlError::LpnUnmapped { .. }) => looped_unmapped += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        let out = ftl.host_read_batch(&lpns, t(1)).expect("ok");
        assert_eq!(out.duration, looped_dur);
        assert_eq!(out.unmapped, looped_unmapped);
        assert_eq!(out.unmapped, 4);
        assert_eq!(ftl.stats().host_pages_read, 8);
    }

    #[test]
    fn batch_rejects_any_out_of_range_address_upfront() {
        let mut ftl = small_ftl();
        let err = ftl.host_write_batch(&[Lpn(0), Lpn(64)], t(0));
        assert!(matches!(err, Err(FtlError::LpnOutOfRange { .. })));
        // Nothing was written: validation happens before the first program.
        assert_eq!(ftl.stats().host_pages_written, 0);
        assert!(matches!(
            ftl.host_read_batch(&[Lpn(99)], t(0)),
            Err(FtlError::LpnOutOfRange { .. })
        ));
    }

    #[test]
    fn install_sip_list_returns_displaced_list() {
        let mut ftl = small_ftl();
        for lpn in 0..8u64 {
            ftl.host_write(Lpn(lpn), t(0)).expect("ok");
        }
        let first: SipList = [Lpn(1), Lpn(2)].into_iter().collect();
        let displaced = ftl.install_sip_list(first.clone());
        assert!(displaced.is_empty());
        let displaced = ftl.install_sip_list(SipList::new());
        assert_eq!(displaced, first);
    }

    #[test]
    fn determinism_same_operations_same_stats() {
        let run = || {
            let mut ftl = small_ftl();
            for round in 0..10u64 {
                for lpn in 0..64u64 {
                    ftl.host_write(Lpn((lpn * 7) % 64), t(round))
                        .expect("in range");
                }
                ftl.background_collect(t(round), SimDuration::from_millis(50), None);
            }
            (
                *ftl.stats(),
                ftl.device().stats().programs,
                ftl.device().stats().erases,
            )
        };
        assert_eq!(run(), run());
    }

    /// Drives `ftl` with a hot-page overwrite workload until the predicate
    /// holds or the round budget runs out; returns the rounds consumed.
    fn hammer_until(ftl: &mut Ftl, rounds: u64, mut done: impl FnMut(&Ftl) -> bool) -> u64 {
        let mut round = 0u64;
        while !done(ftl) && round < rounds {
            for lpn in 0..16u64 {
                match ftl.host_write(Lpn(lpn), t(round)) {
                    Ok(_) | Err(FtlError::ReadOnly) => {}
                    Err(e) => panic!("unexpected write error: {e}"),
                }
            }
            ftl.background_collect(t(round), SimDuration::from_secs(1), None);
            round += 1;
        }
        round
    }

    #[test]
    fn retired_blocks_shrink_reclaimable_capacity() {
        // Regression: invalid pages inside retired blocks used to stay in
        // reclaimable_capacity forever, overstating what BGC could free.
        let mut ftl = Ftl::new(
            FtlConfig::builder()
                .user_pages(64)
                .op_permille(500)
                .pages_per_block(8)
                .gc_reserve_blocks(2)
                .endurance_limit(3)
                .build(),
            Box::new(GreedySelector),
        );
        let rounds = hammer_until(&mut ftl, 2_000, |f| f.retired_blocks() >= 2);
        assert!(
            ftl.retired_blocks() >= 2,
            "no retirements in {rounds} rounds"
        );
        assert_eq!(
            ftl.retired_pages(),
            ftl.retired_blocks() * u64::from(ftl.config().geometry().pages_per_block())
        );
        // Reclaimable capacity must never exceed what the live blocks can
        // actually yield: total live space minus valid data minus the
        // reserve the pool floor keeps back.
        let geometry = *ftl.config().geometry();
        let ppb = u64::from(geometry.pages_per_block());
        let live_pages = (u64::from(geometry.blocks()) - ftl.retired_blocks()) * ppb;
        let reserve = u64::from(ftl.config().gc_reserve_blocks()) * ppb;
        let ceiling = geometry.page_size()
            * (live_pages - ftl.device().total_valid_pages()).saturating_sub(reserve);
        assert!(
            ftl.reclaimable_capacity() <= ceiling,
            "reclaimable {} exceeds achievable ceiling {}",
            ftl.reclaimable_capacity(),
            ceiling
        );
        // And the failure timeline recorded each retirement.
        let retire_events = ftl
            .degrade_events()
            .iter()
            .filter(|e| matches!(e.kind, DegradeKind::BlockRetired(_)))
            .count() as u64;
        assert_eq!(retire_events, ftl.retired_blocks());
    }

    #[test]
    fn exhausted_endurance_degrades_to_read_only() {
        // Satellite: with a tiny endurance limit and modest OP, retirements
        // must end in a clean read-only transition — no panic, no hang.
        let mut ftl = Ftl::new(
            FtlConfig::builder()
                .user_pages(64)
                .op_permille(250)
                .pages_per_block(8)
                .gc_reserve_blocks(2)
                .endurance_limit(2)
                .build(),
            Box::new(GreedySelector),
        );
        let rounds = hammer_until(&mut ftl, 4_000, Ftl::read_only);
        assert!(ftl.read_only(), "never went read-only in {rounds} rounds");
        assert!(matches!(
            ftl.host_write(Lpn(0), t(rounds)),
            Err(FtlError::ReadOnly)
        ));
        // Reads of surviving data still work.
        assert!(ftl.host_read(Lpn(0), t(rounds)).is_ok());
        // BGC refuses to churn a dead device.
        let bgc = ftl.background_collect(t(rounds), SimDuration::from_secs(1), None);
        assert_eq!(bgc, BgcOutcome::default());
        // The timeline ends with exactly one ReadOnly event.
        let read_only_events = ftl
            .degrade_events()
            .iter()
            .filter(|e| matches!(e.kind, DegradeKind::ReadOnly))
            .count();
        assert_eq!(read_only_events, 1);
        assert!(matches!(
            ftl.degrade_events().last().map(|e| e.kind),
            Some(DegradeKind::ReadOnly)
        ));
    }

    fn faulty_config(seed: u64) -> FtlConfig {
        FtlConfig::builder()
            .user_pages(64)
            .op_permille(500)
            .pages_per_block(8)
            .gc_reserve_blocks(2)
            .endurance_limit(20)
            .fault(jitgc_nand::FaultConfig {
                seed,
                program_rate: 0.05,
                erase_rate: 0.05,
                read_rate: 0.02,
                wear_scale: 10,
            })
            .build()
    }

    #[test]
    fn injected_faults_are_survived_and_deterministic() {
        let run = |seed: u64| {
            let mut ftl = Ftl::new(faulty_config(seed), Box::new(GreedySelector));
            let rounds = hammer_until(&mut ftl, 300, |_| false);
            for lpn in 0..16u64 {
                let _ = ftl.host_read(Lpn(lpn), t(rounds));
            }
            (
                *ftl.stats(),
                ftl.degrade_events().to_vec(),
                ftl.device().stats().program_failures,
                ftl.device().stats().erase_failures,
            )
        };
        let (stats, events, program_failures, erase_failures) = run(7);
        assert!(
            stats.program_retries > 0 && program_failures > 0,
            "fault rates should have produced program failures"
        );
        assert!(erase_failures > 0, "no erase failure injected");
        assert!(
            stats.retired_blocks > 0 && !events.is_empty(),
            "erase failures must retire blocks onto the timeline"
        );
        // Same seed ⇒ identical failure timeline and counters.
        assert_eq!(
            run(7),
            (stats, events.clone(), program_failures, erase_failures)
        );
        // A different seed produces a different fault history.
        assert_ne!(run(8).2, program_failures);
    }

    #[test]
    fn failed_batch_reads_are_reported_per_lpn() {
        let mut ftl = Ftl::new(faulty_config(3), Box::new(GreedySelector));
        hammer_until(&mut ftl, 200, |_| false);
        let lpns: Vec<Lpn> = (0..16u64).map(Lpn).collect();
        let mut saw_failure = false;
        for _ in 0..50 {
            let out = ftl.host_read_batch(&lpns, t(999)).expect("in range");
            assert_eq!(out.failed as usize, ftl.failed_read_lpns().len());
            for lpn in ftl.failed_read_lpns() {
                assert!(lpn.0 < 16, "failed LPN outside the batch");
            }
            saw_failure |= out.failed > 0;
        }
        assert!(saw_failure, "worn device never produced a read failure");
        assert!(ftl.stats().host_read_failures > 0);
    }
}
