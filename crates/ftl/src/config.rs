//! FTL configuration.

use jitgc_nand::{FaultConfig, Geometry, NandTiming};
use jitgc_sim::json::{JsonError, JsonValue, ObjectBuilder};
use jitgc_sim::{ByteSize, SimDuration};

/// Static configuration of an [`Ftl`](crate::Ftl).
///
/// The physical geometry is **derived**: the device gets enough blocks to
/// hold `user_pages` of logical space plus `op_permille`/1000 of
/// over-provisioning plus `gc_reserve_blocks` the GC engine needs as
/// scratch space for migrations.
///
/// # Example
///
/// ```
/// use jitgc_ftl::FtlConfig;
///
/// let config = FtlConfig::builder()
///     .user_pages(10_000)
///     .op_permille(70)          // 7 % OP, like the paper's SM843T
///     .pages_per_block(128)
///     .page_size_bytes(4096)
///     .build();
/// assert_eq!(config.user_pages(), 10_000);
/// assert!(config.op_pages() >= 700);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FtlConfig {
    user_pages: u64,
    op_permille: u64,
    gc_reserve_blocks: u32,
    sip_filter_threshold_permille: u64,
    wear_level_threshold: u64,
    hot_cold_streams: bool,
    hot_window: SimDuration,
    endurance_limit: Option<u64>,
    fault: Option<FaultConfig>,
    geometry: Geometry,
    timing: NandTiming,
}

impl FtlConfig {
    /// Starts building a configuration. See [`FtlConfigBuilder`].
    #[must_use]
    pub fn builder() -> FtlConfigBuilder {
        FtlConfigBuilder::default()
    }

    /// Number of host-visible logical pages.
    #[must_use]
    pub fn user_pages(&self) -> u64 {
        self.user_pages
    }

    /// Host-visible capacity in bytes.
    #[must_use]
    pub fn user_capacity(&self) -> ByteSize {
        self.geometry.page_size() * self.user_pages
    }

    /// Over-provisioning ratio in permille (70 = 7 %).
    #[must_use]
    pub fn op_permille(&self) -> u64 {
        self.op_permille
    }

    /// Number of over-provisioning pages (`C_OP` in pages).
    #[must_use]
    pub fn op_pages(&self) -> u64 {
        self.user_pages * self.op_permille / 1000
    }

    /// Over-provisioning capacity in bytes (`C_OP`).
    #[must_use]
    pub fn op_capacity(&self) -> ByteSize {
        self.geometry.page_size() * self.op_pages()
    }

    /// Blocks the GC engine keeps for itself as migration scratch space.
    #[must_use]
    pub fn gc_reserve_blocks(&self) -> u32 {
        self.gc_reserve_blocks
    }

    /// SIP filter threshold in permille of a block's valid pages: a BGC
    /// victim candidate whose soon-to-be-invalidated fraction exceeds this
    /// is avoided. Default 250 (25 %): cold blocks carry almost no dirty
    /// overlap while hot, recently-written blocks carry a lot, so
    /// half of the valid pages separates the two populations.
    #[must_use]
    pub fn sip_filter_threshold_permille(&self) -> u64 {
        self.sip_filter_threshold_permille
    }

    /// Erase-count spread (max − min) that triggers static wear leveling.
    #[must_use]
    pub fn wear_level_threshold(&self) -> u64 {
        self.wear_level_threshold
    }

    /// `true` when host writes are split into hot and cold streams
    /// (separate active blocks), so frequently-updated pages do not share
    /// blocks with cold data — an FTL-side complement to SIP filtering
    /// that reduces the valid data GC must migrate.
    #[must_use]
    pub fn hot_cold_streams(&self) -> bool {
        self.hot_cold_streams
    }

    /// A page rewritten within this window of its previous write counts as
    /// hot (only meaningful with [`hot_cold_streams`](Self::hot_cold_streams)).
    #[must_use]
    pub fn hot_window(&self) -> SimDuration {
        self.hot_window
    }

    /// Program/erase endurance limit per block, if device end-of-life is
    /// modeled (`None` = unlimited; 3 000 cycles is typical 20 nm MLC).
    #[must_use]
    pub fn endurance_limit(&self) -> Option<u64> {
        self.endurance_limit
    }

    /// Wear-dependent fault injection parameters, if fault injection is
    /// enabled (`None` = a fault-free device).
    #[must_use]
    pub fn fault(&self) -> Option<&FaultConfig> {
        self.fault.as_ref()
    }

    /// Blocks available for data placement: the full geometry minus the
    /// GC migration scratch reserve. This is the block pool a steady-state
    /// GC cycle actually rotates through — the `T` of mean-field WAF
    /// models (the `jitgc-model` crate).
    #[must_use]
    pub fn data_blocks(&self) -> u64 {
        u64::from(self.geometry.blocks()) - u64::from(self.gc_reserve_blocks)
    }

    /// Pages available for data placement (`data_blocks × pages_per_block`).
    #[must_use]
    pub fn data_pages(&self) -> u64 {
        self.data_blocks() * u64::from(self.geometry.pages_per_block())
    }

    /// Total block-erase budget before endurance exhaustion
    /// (`data_blocks × endurance_limit`), if end-of-life is modeled.
    #[must_use]
    pub fn erase_budget(&self) -> Option<u64> {
        self.endurance_limit
            .map(|cycles| self.data_blocks() * cycles)
    }

    /// The derived physical geometry.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The NAND timing model.
    #[must_use]
    pub fn timing(&self) -> &NandTiming {
        &self.timing
    }

    /// Serializes to the repository's JSON config format. The geometry is
    /// not stored: [`from_json`](Self::from_json) re-derives it from the
    /// same inputs [`build`](FtlConfigBuilder::build) uses. The `fault`
    /// field is emitted only when fault injection is configured, so
    /// fault-free config dumps are unchanged from earlier versions.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut b = ObjectBuilder::new()
            .field("user_pages", self.user_pages)
            .field("op_permille", self.op_permille)
            .field("pages_per_block", self.geometry.pages_per_block())
            .field("page_size_bytes", self.geometry.page_size().as_u64())
            .field("gc_reserve_blocks", self.gc_reserve_blocks)
            .field(
                "sip_filter_threshold_permille",
                self.sip_filter_threshold_permille,
            )
            .field("wear_level_threshold", self.wear_level_threshold)
            .field("hot_cold_streams", self.hot_cold_streams)
            .field("hot_window_us", self.hot_window.as_micros())
            .field("endurance_limit", self.endurance_limit)
            .field("timing", self.timing.to_json());
        if let Some(fault) = &self.fault {
            b = b.field("fault", fault.to_json());
        }
        b.build()
    }

    /// Parses the format written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let u64_field = |key: &str| -> Result<u64, JsonError> {
            v.req(key)?
                .as_u64()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be an integer")))
        };
        let u32_field = |key: &str| -> Result<u32, JsonError> {
            u64_field(key)?
                .try_into()
                .map_err(|_| JsonError::new(format!("`{key}` out of range")))
        };
        let mut builder = FtlConfig::builder()
            .user_pages(u64_field("user_pages")?)
            .op_permille(u64_field("op_permille")?)
            .pages_per_block(u32_field("pages_per_block")?)
            .page_size_bytes(u64_field("page_size_bytes")?)
            .gc_reserve_blocks(u32_field("gc_reserve_blocks")?)
            .sip_filter_threshold_permille(u64_field("sip_filter_threshold_permille")?)
            .wear_level_threshold(u64_field("wear_level_threshold")?)
            .timing(NandTiming::from_json(v.req("timing")?)?);
        if v.req("hot_cold_streams")?.as_bool().unwrap_or(false) {
            builder =
                builder.hot_cold_streams(SimDuration::from_micros(u64_field("hot_window_us")?));
        }
        match v.get("endurance_limit") {
            None => {}
            Some(limit) if limit.is_null() => {}
            Some(limit) => {
                let cycles = limit
                    .as_u64()
                    .ok_or_else(|| JsonError::new("`endurance_limit` must be an integer"))?;
                builder = builder.endurance_limit(cycles);
            }
        }
        match v.get("fault") {
            None => {}
            Some(fault) if fault.is_null() => {}
            Some(fault) => builder = builder.fault(FaultConfig::from_json(fault)?),
        }
        Ok(builder.build())
    }

    /// Reconstructs a builder carrying every setting of this
    /// configuration, so a caller can tweak one knob without silently
    /// dropping the others (timing, SIP threshold, endurance, fault
    /// injection, …) the way a fresh builder would.
    #[must_use]
    pub fn to_builder(&self) -> FtlConfigBuilder {
        let mut builder = FtlConfig::builder()
            .user_pages(self.user_pages)
            .op_permille(self.op_permille)
            .pages_per_block(self.geometry.pages_per_block())
            .page_size_bytes(self.geometry.page_size().as_u64())
            .gc_reserve_blocks(self.gc_reserve_blocks)
            .sip_filter_threshold_permille(self.sip_filter_threshold_permille)
            .wear_level_threshold(self.wear_level_threshold)
            .timing(self.timing);
        if self.hot_cold_streams {
            builder = builder.hot_cold_streams(self.hot_window);
        }
        if let Some(limit) = self.endurance_limit {
            builder = builder.endurance_limit(limit);
        }
        if let Some(fault) = self.fault {
            builder = builder.fault(fault);
        }
        builder
    }
}

/// Builder for [`FtlConfig`].
///
/// Defaults: 8 192 user pages, 7 % OP, 128 pages/block, 4 KiB pages,
/// 2 GC-reserve blocks, [`NandTiming::mlc_20nm`], SIP threshold 10 %,
/// wear-level threshold 64.
#[derive(Debug, Clone)]
pub struct FtlConfigBuilder {
    user_pages: u64,
    user_pages_is_bytes: bool,
    op_permille: u64,
    pages_per_block: u32,
    page_size_bytes: u64,
    gc_reserve_blocks: u32,
    sip_filter_threshold_permille: u64,
    wear_level_threshold: u64,
    hot_cold_streams: bool,
    hot_window: SimDuration,
    endurance_limit: Option<u64>,
    fault: Option<FaultConfig>,
    timing: NandTiming,
}

impl Default for FtlConfigBuilder {
    fn default() -> Self {
        FtlConfigBuilder {
            user_pages: 8_192,
            user_pages_is_bytes: false,
            op_permille: 70,
            pages_per_block: 128,
            page_size_bytes: 4_096,
            gc_reserve_blocks: 2,
            sip_filter_threshold_permille: 250,
            wear_level_threshold: 64,
            hot_cold_streams: false,
            hot_window: SimDuration::from_secs(5),
            endurance_limit: None,
            fault: None,
            timing: NandTiming::mlc_20nm(),
        }
    }
}

impl FtlConfigBuilder {
    /// Sets the logical (host-visible) page count.
    #[must_use]
    pub fn user_pages(mut self, pages: u64) -> Self {
        self.user_pages = pages;
        self.user_pages_is_bytes = false;
        self
    }

    /// Sets the host-visible capacity in bytes (converted to pages with the
    /// configured page size at [`build`](Self::build) time).
    #[must_use]
    pub fn user_capacity(mut self, capacity: ByteSize) -> Self {
        self.user_pages = capacity.as_u64();
        self.user_pages_is_bytes = true;
        self
    }

    /// Sets the over-provisioning ratio in permille (70 = 7 %).
    #[must_use]
    pub fn op_permille(mut self, permille: u64) -> Self {
        self.op_permille = permille;
        self
    }

    /// Sets pages per erase block.
    #[must_use]
    pub fn pages_per_block(mut self, pages: u32) -> Self {
        self.pages_per_block = pages;
        self
    }

    /// Sets the page size in bytes.
    #[must_use]
    pub fn page_size_bytes(mut self, bytes: u64) -> Self {
        self.page_size_bytes = bytes;
        self
    }

    /// Sets the GC scratch reserve in blocks (minimum 1).
    #[must_use]
    pub fn gc_reserve_blocks(mut self, blocks: u32) -> Self {
        self.gc_reserve_blocks = blocks;
        self
    }

    /// Sets the SIP filter threshold in permille of valid pages.
    #[must_use]
    pub fn sip_filter_threshold_permille(mut self, permille: u64) -> Self {
        self.sip_filter_threshold_permille = permille;
        self
    }

    /// Sets the erase-count spread that triggers static wear leveling.
    #[must_use]
    pub fn wear_level_threshold(mut self, threshold: u64) -> Self {
        self.wear_level_threshold = threshold;
        self
    }

    /// Enables hot/cold stream separation with the given hot window.
    #[must_use]
    pub fn hot_cold_streams(mut self, window: SimDuration) -> Self {
        self.hot_cold_streams = true;
        self.hot_window = window;
        self
    }

    /// Models device end-of-life: blocks fail after `cycles` erases, and
    /// the failure surfaces as [`FtlError::Nand`](crate::FtlError::Nand)
    /// with [`NandError::BlockWornOut`](jitgc_nand::NandError::BlockWornOut).
    #[must_use]
    pub fn endurance_limit(mut self, cycles: u64) -> Self {
        self.endurance_limit = Some(cycles);
        self
    }

    /// Enables seeded wear-dependent fault injection (see
    /// [`FaultConfig`]). Faults surface as NAND errors the FTL recovers
    /// from: programs are retried elsewhere, erase failures retire the
    /// block, uncorrectable reads are reported to the host layer.
    #[must_use]
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Sets the NAND timing model.
    #[must_use]
    pub fn timing(mut self, timing: NandTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Finalizes the configuration, deriving the physical geometry.
    ///
    /// # Panics
    ///
    /// Panics if user pages, pages per block, page size, or the GC reserve
    /// is zero.
    #[must_use]
    pub fn build(self) -> FtlConfig {
        assert!(self.pages_per_block > 0, "pages per block must be non-zero");
        assert!(self.page_size_bytes > 0, "page size must be non-zero");
        assert!(
            self.gc_reserve_blocks >= 1,
            "gc reserve must be at least one block"
        );
        let user_pages = if self.user_pages_is_bytes {
            self.user_pages.div_ceil(self.page_size_bytes)
        } else {
            self.user_pages
        };
        assert!(user_pages > 0, "user capacity must be non-zero");
        let op_pages = user_pages * self.op_permille / 1000;
        let data_blocks = (user_pages + op_pages).div_ceil(u64::from(self.pages_per_block));
        let blocks =
            u32::try_from(data_blocks).expect("block count fits u32") + self.gc_reserve_blocks;
        let geometry = Geometry::builder()
            .blocks(blocks)
            .pages_per_block(self.pages_per_block)
            .page_size_bytes(self.page_size_bytes)
            .build();
        FtlConfig {
            user_pages,
            hot_cold_streams: self.hot_cold_streams,
            hot_window: self.hot_window,
            endurance_limit: self.endurance_limit,
            fault: self.fault,
            op_permille: self.op_permille,
            gc_reserve_blocks: self.gc_reserve_blocks,
            sip_filter_threshold_permille: self.sip_filter_threshold_permille,
            wear_level_threshold: self.wear_level_threshold,
            geometry,
            timing: self.timing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let c = FtlConfig::builder()
            .user_pages(5_000)
            .op_permille(150)
            .pages_per_block(64)
            .page_size_bytes(8_192)
            .gc_reserve_blocks(3)
            .sip_filter_threshold_permille(400)
            .wear_level_threshold(32)
            .hot_cold_streams(SimDuration::from_secs(7))
            .endurance_limit(3_000)
            .timing(NandTiming::legacy_130nm())
            .build();
        let back = FtlConfig::from_json(&c.to_json()).expect("parse");
        assert_eq!(back.user_pages(), c.user_pages());
        assert_eq!(back.geometry(), c.geometry());
        assert_eq!(back.timing(), c.timing());
        assert_eq!(back.hot_window(), c.hot_window());
        assert_eq!(back.endurance_limit(), c.endurance_limit());
        assert_eq!(
            back.sip_filter_threshold_permille(),
            c.sip_filter_threshold_permille()
        );
    }

    #[test]
    fn json_endurance_limit_optional() {
        let c = FtlConfig::builder().build();
        let back = FtlConfig::from_json(&c.to_json()).expect("parse");
        assert_eq!(back.endurance_limit(), None);
        assert!(back.fault().is_none());
    }

    #[test]
    fn json_fault_round_trips_and_is_omitted_when_absent() {
        let fault = FaultConfig {
            seed: 99,
            program_rate: 0.01,
            erase_rate: 0.02,
            read_rate: 0.005,
            wear_scale: 50,
        };
        let c = FtlConfig::builder().fault(fault).build();
        let back = FtlConfig::from_json(&c.to_json()).expect("parse");
        assert_eq!(back.fault(), Some(&fault));
        // A fault-free config's dump carries no `fault` key at all, so
        // pre-existing dumps stay byte-identical.
        let plain = FtlConfig::builder().build();
        assert!(plain.to_json().get("fault").is_none());
    }

    #[test]
    fn to_builder_preserves_every_setting() {
        let c = FtlConfig::builder()
            .user_pages(5_000)
            .op_permille(150)
            .pages_per_block(64)
            .page_size_bytes(8_192)
            .gc_reserve_blocks(3)
            .sip_filter_threshold_permille(400)
            .wear_level_threshold(32)
            .hot_cold_streams(SimDuration::from_secs(7))
            .endurance_limit(3_000)
            .fault(FaultConfig {
                seed: 5,
                program_rate: 0.1,
                erase_rate: 0.0,
                read_rate: 0.0,
                wear_scale: 100,
            })
            .timing(NandTiming::legacy_130nm())
            .build();
        let back = c.to_builder().build();
        assert_eq!(back.user_pages(), c.user_pages());
        assert_eq!(back.op_permille(), c.op_permille());
        assert_eq!(back.geometry(), c.geometry());
        assert_eq!(back.gc_reserve_blocks(), c.gc_reserve_blocks());
        assert_eq!(
            back.sip_filter_threshold_permille(),
            c.sip_filter_threshold_permille()
        );
        assert_eq!(back.wear_level_threshold(), c.wear_level_threshold());
        assert_eq!(back.hot_cold_streams(), c.hot_cold_streams());
        assert_eq!(back.hot_window(), c.hot_window());
        assert_eq!(back.endurance_limit(), c.endurance_limit());
        assert_eq!(back.fault(), c.fault());
        assert_eq!(back.timing(), c.timing());
        // One tweak, everything else intact.
        let tweaked = c.to_builder().op_permille(300).build();
        assert_eq!(tweaked.op_permille(), 300);
        assert_eq!(tweaked.endurance_limit(), c.endurance_limit());
        assert_eq!(tweaked.timing(), c.timing());
    }

    #[test]
    fn derives_geometry_with_op_and_reserve() {
        let c = FtlConfig::builder()
            .user_pages(1_000)
            .op_permille(70)
            .pages_per_block(100)
            .gc_reserve_blocks(2)
            .build();
        // 1000 user + 70 OP pages = 1070 → 11 data blocks + 2 reserve.
        assert_eq!(c.geometry().blocks(), 13);
        assert_eq!(c.op_pages(), 70);
    }

    #[test]
    fn user_capacity_in_bytes() {
        let c = FtlConfig::builder()
            .user_pages(1_000)
            .page_size_bytes(4_096)
            .build();
        assert_eq!(c.user_capacity(), ByteSize::bytes(4_096_000));
    }

    #[test]
    fn capacity_builder_converts_to_pages() {
        let c = FtlConfig::builder()
            .user_capacity(ByteSize::mib(4))
            .page_size_bytes(4_096)
            .build();
        assert_eq!(c.user_pages(), 1_024);
    }

    #[test]
    fn op_capacity_scales_with_permille() {
        let a = FtlConfig::builder()
            .user_pages(10_000)
            .op_permille(70)
            .build();
        let b = FtlConfig::builder()
            .user_pages(10_000)
            .op_permille(140)
            .build();
        assert_eq!(b.op_pages(), 2 * a.op_pages());
    }

    #[test]
    fn defaults_are_sane() {
        let c = FtlConfig::builder().build();
        assert_eq!(c.user_pages(), 8_192);
        assert_eq!(c.op_permille(), 70);
        assert_eq!(c.gc_reserve_blocks(), 2);
        assert!(c.geometry().total_pages() > c.user_pages() + c.op_pages());
    }

    #[test]
    #[should_panic(expected = "gc reserve must be at least one block")]
    fn zero_reserve_panics() {
        let _ = FtlConfig::builder().gc_reserve_blocks(0).build();
    }

    #[test]
    #[should_panic(expected = "user capacity must be non-zero")]
    fn zero_user_pages_panics() {
        let _ = FtlConfig::builder().user_pages(0).build();
    }
}
