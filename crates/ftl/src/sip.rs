//! The soon-to-be-invalidated page (SIP) list.

use jitgc_nand::Lpn;

/// The set of logical pages expected to be invalidated shortly.
///
/// The paper's buffered-write predictor scans the page cache and reports
/// every dirty page's logical address: the flash copy of such a page will
/// become garbage as soon as the dirty page is flushed, so migrating it
/// during BGC is wasted work. The FTL uses this list to steer victim
/// selection away from blocks rich in soon-dead data (Sec. 3.3, Table 3).
///
/// # Representation
///
/// The predictor refills this set on every poll, so the representation is
/// an *epoch-tagged bitmap* over the logical page space rather than a
/// hash set: one bit per LPN (`Vec<u64>` words) plus a per-word generation
/// stamp. [`clear`](SipList::clear) just bumps the generation counter —
/// O(1) — and a stale stamp makes a word read as all-zeros, so words are
/// lazily re-zeroed the first time they are touched in a new generation.
/// Membership tests from the victim scorer are a shift and a mask with no
/// hashing, and the backing storage is reused across polls.
///
/// # Example
///
/// ```
/// use jitgc_ftl::SipList;
/// use jitgc_nand::Lpn;
///
/// let sip: SipList = [Lpn(1), Lpn(5)].into_iter().collect();
/// assert!(sip.contains(Lpn(5)));
/// assert_eq!(sip.len(), 2);
/// ```
#[derive(Clone)]
pub struct SipList {
    /// Bit `i` of `words[w]` set (while `stamps[w] == generation`) means
    /// `Lpn(w * 64 + i)` is on the list.
    words: Vec<u64>,
    /// Generation tag per word; a stale stamp reads as an all-zero word.
    stamps: Vec<u32>,
    generation: u32,
    len: usize,
}

impl Default for SipList {
    fn default() -> Self {
        SipList {
            words: Vec::new(),
            stamps: Vec::new(),
            // Starts above the all-zero stamps so untouched words are stale.
            generation: 1,
            len: 0,
        }
    }
}

impl SipList {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        SipList::default()
    }

    /// The word with stale-generation masking applied (0 out of range).
    fn effective_word(&self, w: usize) -> u64 {
        if w < self.words.len() && self.stamps[w] == self.generation {
            self.words[w]
        } else {
            0
        }
    }

    /// Grows the backing storage to cover word index `w`, then returns a
    /// mutable reference to the word, re-zeroing it if its stamp is stale.
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
            self.stamps.resize(w + 1, 0);
        }
        if self.stamps[w] != self.generation {
            self.stamps[w] = self.generation;
            self.words[w] = 0;
        }
        &mut self.words[w]
    }

    /// `true` if `lpn` is expected to be invalidated soon.
    #[must_use]
    pub fn contains(&self, lpn: Lpn) -> bool {
        let (w, bit) = (lpn.0 / 64, lpn.0 % 64);
        self.effective_word(w as usize) & (1 << bit) != 0
    }

    /// Adds a logical page; returns `false` if it was already present.
    pub fn insert(&mut self, lpn: Lpn) -> bool {
        let (w, bit) = (lpn.0 / 64, lpn.0 % 64);
        let word = self.word_mut(w as usize);
        let mask = 1 << bit;
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        self.len += 1;
        true
    }

    /// Removes a logical page (e.g. once the overwrite actually landed);
    /// returns `true` if it was present.
    pub fn remove(&mut self, lpn: Lpn) -> bool {
        let (w, bit) = (lpn.0 / 64, lpn.0 % 64);
        if self.effective_word(w as usize) & (1 << bit) == 0 {
            return false;
        }
        *self.word_mut(w as usize) &= !(1 << bit);
        self.len -= 1;
        true
    }

    /// Number of pages on the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the listed logical pages in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = Lpn> + '_ {
        (0..self.words.len()).flat_map(move |w| {
            let mut bits = self.effective_word(w);
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                Some(Lpn(w as u64 * 64 + bit))
            })
        })
    }

    /// Replaces the contents with a snapshot of a raw bitmap: bit
    /// `l % 64` of `words[l / 64]` set means `Lpn(l)` is present, and
    /// `len` is the number of set bits. One bulk copy instead of per-LPN
    /// inserts — this is how the predictor turns the page cache's
    /// dirty-LPN bitmap into the poll's SIP list.
    pub fn assign_words(&mut self, words: &[u64], len: usize) {
        self.clear();
        self.words.clear();
        self.words.extend_from_slice(words);
        self.stamps.clear();
        self.stamps.resize(words.len(), self.generation);
        self.len = len;
        debug_assert_eq!(
            self.words
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>(),
            len,
            "assign_words len does not match the bitmap popcount"
        );
    }

    /// Removes every entry in O(1) by bumping the generation; the backing
    /// words are lazily re-zeroed on next touch.
    pub fn clear(&mut self) {
        self.len = 0;
        if self.generation == u32::MAX {
            // Generation wrap: a stamp from 2^32 clears ago could alias the
            // new generation, so eagerly reset every stamp once.
            self.stamps.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }
}

impl PartialEq for SipList {
    /// Set equality: generation tags and backing capacity are ignored.
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let words = self.words.len().max(other.words.len());
        (0..words).all(|w| self.effective_word(w) == other.effective_word(w))
    }
}

impl Eq for SipList {}

impl std::fmt::Debug for SipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Lpn> for SipList {
    fn from_iter<T: IntoIterator<Item = Lpn>>(iter: T) -> Self {
        let mut sip = SipList::new();
        sip.extend(iter);
        sip
    }
}

impl Extend<Lpn> for SipList {
    fn extend<T: IntoIterator<Item = Lpn>>(&mut self, iter: T) {
        for lpn in iter {
            self.insert(lpn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut sip = SipList::new();
        assert!(sip.insert(Lpn(1)));
        assert!(!sip.insert(Lpn(1)));
        assert!(sip.contains(Lpn(1)));
        assert!(sip.remove(Lpn(1)));
        assert!(!sip.remove(Lpn(1)));
        assert!(sip.is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut sip: SipList = [Lpn(1), Lpn(2)].into_iter().collect();
        sip.extend([Lpn(3)]);
        assert_eq!(sip.len(), 3);
        let mut all: Vec<u64> = sip.iter().map(|l| l.0).collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn clear_empties() {
        let mut sip: SipList = [Lpn(9)].into_iter().collect();
        sip.clear();
        assert!(sip.is_empty());
    }

    #[test]
    fn iter_is_ascending() {
        let sip: SipList = [Lpn(130), Lpn(2), Lpn(64), Lpn(63)].into_iter().collect();
        let all: Vec<u64> = sip.iter().map(|l| l.0).collect();
        assert_eq!(all, vec![2, 63, 64, 130]);
    }

    #[test]
    fn contains_past_backing_storage_is_false() {
        let sip: SipList = [Lpn(3)].into_iter().collect();
        assert!(!sip.contains(Lpn(1_000_000)));
        let mut sip = sip;
        assert!(!sip.remove(Lpn(1_000_000)));
    }

    #[test]
    fn clear_reuses_storage_without_ghosts() {
        let mut sip = SipList::new();
        for round in 0..5u64 {
            assert!(sip.is_empty());
            for i in 0..200u64 {
                assert!(
                    sip.insert(Lpn(i * 3 + round)),
                    "ghost bit from round {}",
                    round
                );
            }
            assert_eq!(sip.len(), 200);
            assert!(!sip.contains(Lpn(601 + round)));
            sip.clear();
        }
        assert!(!sip.contains(Lpn(3)));
    }

    #[test]
    fn equality_is_set_semantics() {
        let a: SipList = [Lpn(1), Lpn(200)].into_iter().collect();
        // Same contents via a different history: extra inserts + clears grow
        // the backing storage and advance the generation.
        let mut b = SipList::new();
        b.insert(Lpn(4_096));
        b.clear();
        b.insert(Lpn(200));
        b.insert(Lpn(1));
        assert_eq!(a, b);
        b.insert(Lpn(7));
        assert_ne!(a, b);
    }

    #[test]
    fn assign_words_snapshots_a_raw_bitmap() {
        let mut sip: SipList = [Lpn(900)].into_iter().collect();
        let words = [0b101u64, 0, 1 << 63];
        sip.assign_words(&words, 3);
        let all: Vec<u64> = sip.iter().map(|l| l.0).collect();
        assert_eq!(all, vec![0, 2, 191]);
        assert!(!sip.contains(Lpn(900)));
        // Matches the same set built by per-LPN inserts.
        let by_insert: SipList = [Lpn(0), Lpn(2), Lpn(191)].into_iter().collect();
        assert_eq!(sip, by_insert);
    }

    #[test]
    fn generation_wrap_resets_stamps() {
        let mut sip = SipList::new();
        sip.insert(Lpn(5));
        sip.generation = u32::MAX;
        sip.stamps[0] = u32::MAX; // simulate a word touched at the last generation
        sip.words[0] = 1 << 5;
        sip.clear();
        assert_eq!(sip.generation, 1);
        assert!(!sip.contains(Lpn(5)));
        assert!(sip.insert(Lpn(5)));
    }
}
