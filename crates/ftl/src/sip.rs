//! The soon-to-be-invalidated page (SIP) list.

use jitgc_nand::Lpn;
use std::collections::HashSet;

/// The set of logical pages expected to be invalidated shortly.
///
/// The paper's buffered-write predictor scans the page cache and reports
/// every dirty page's logical address: the flash copy of such a page will
/// become garbage as soon as the dirty page is flushed, so migrating it
/// during BGC is wasted work. The FTL uses this list to steer victim
/// selection away from blocks rich in soon-dead data (Sec. 3.3, Table 3).
///
/// # Example
///
/// ```
/// use jitgc_ftl::SipList;
/// use jitgc_nand::Lpn;
///
/// let sip: SipList = [Lpn(1), Lpn(5)].into_iter().collect();
/// assert!(sip.contains(Lpn(5)));
/// assert_eq!(sip.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SipList {
    lpns: HashSet<Lpn>,
}

impl SipList {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        SipList::default()
    }

    /// `true` if `lpn` is expected to be invalidated soon.
    #[must_use]
    pub fn contains(&self, lpn: Lpn) -> bool {
        self.lpns.contains(&lpn)
    }

    /// Adds a logical page; returns `false` if it was already present.
    pub fn insert(&mut self, lpn: Lpn) -> bool {
        self.lpns.insert(lpn)
    }

    /// Removes a logical page (e.g. once the overwrite actually landed);
    /// returns `true` if it was present.
    pub fn remove(&mut self, lpn: Lpn) -> bool {
        self.lpns.remove(&lpn)
    }

    /// Number of pages on the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lpns.len()
    }

    /// `true` when the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lpns.is_empty()
    }

    /// Iterates the listed logical pages (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = Lpn> + '_ {
        self.lpns.iter().copied()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.lpns.clear();
    }
}

impl FromIterator<Lpn> for SipList {
    fn from_iter<T: IntoIterator<Item = Lpn>>(iter: T) -> Self {
        SipList {
            lpns: iter.into_iter().collect(),
        }
    }
}

impl Extend<Lpn> for SipList {
    fn extend<T: IntoIterator<Item = Lpn>>(&mut self, iter: T) {
        self.lpns.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut sip = SipList::new();
        assert!(sip.insert(Lpn(1)));
        assert!(!sip.insert(Lpn(1)));
        assert!(sip.contains(Lpn(1)));
        assert!(sip.remove(Lpn(1)));
        assert!(!sip.remove(Lpn(1)));
        assert!(sip.is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut sip: SipList = [Lpn(1), Lpn(2)].into_iter().collect();
        sip.extend([Lpn(3)]);
        assert_eq!(sip.len(), 3);
        let mut all: Vec<u64> = sip.iter().map(|l| l.0).collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn clear_empties() {
        let mut sip: SipList = [Lpn(9)].into_iter().collect();
        sip.clear();
        assert!(sip.is_empty());
    }
}
