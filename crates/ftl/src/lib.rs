//! Page-mapping flash translation layer (FTL) for the JIT-GC simulator.
//!
//! The FTL owns the NAND device and exposes the host-visible view of it:
//! a flat logical page space (`Lpn`s) backed by out-of-place updates,
//! garbage collection, over-provisioning accounting, and wear leveling.
//!
//! Everything the paper measures bottoms out here:
//!
//! * **Foreground GC (FGC)** — when a host write finds the free-block pool
//!   at its floor, the write blocks while the FTL reclaims space. The cost
//!   lands on that write's latency; this is the IOPS penalty of a lazy BGC
//!   policy.
//! * **Background GC (BGC)** — [`Ftl::background_collect`] reclaims blocks
//!   up to a caller-supplied budget; the *policy* deciding when and how much
//!   lives in `jitgc-core`, keeping mechanism and policy separate.
//! * **Victim selection** — pluggable [`VictimSelector`] (greedy,
//!   cost-benefit, FIFO, random) plus the paper's **SIP filter**: a
//!   [`SipList`] of soon-to-be-invalidated logical pages steers BGC away
//!   from blocks whose valid data is about to die anyway.
//! * **WAF** — [`FtlStats::waf`] is NAND programs ÷ host page writes, the
//!   paper's lifetime proxy.
//!
//! # Example
//!
//! ```
//! use jitgc_ftl::{Ftl, FtlConfig, GreedySelector};
//! use jitgc_nand::Lpn;
//! use jitgc_sim::SimTime;
//!
//! # fn main() -> Result<(), jitgc_ftl::FtlError> {
//! let config = FtlConfig::builder()
//!     .user_pages(1024)
//!     .op_permille(70) // 7% over-provisioning like the SM843T
//!     .build();
//! let mut ftl = Ftl::new(config, Box::new(GreedySelector));
//!
//! let now = SimTime::ZERO;
//! let outcome = ftl.host_write(Lpn(42), now)?;
//! assert!(!outcome.foreground_gc);
//! assert_eq!(ftl.stats().host_pages_written, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod ftl;
mod sip;
mod stats;
mod victim;
mod victim_index;

pub use config::{FtlConfig, FtlConfigBuilder};
pub use error::FtlError;
pub use ftl::{
    BatchReadOutcome, BatchWriteOutcome, BgcOutcome, DegradeEvent, DegradeKind, Ftl, ReadOutcome,
    WearLevelOutcome, WriteOutcome,
};
pub use sip::SipList;
pub use stats::FtlStats;
pub use victim::{
    BlockInfo, CostBenefitSelector, FifoSelector, GreedySelector, RandomSelector, VictimSelector,
};

// Re-export the address types users need to drive the FTL.
pub use jitgc_nand::{BlockId, Lpn, Ppn};
