//! Pluggable GC victim-block selection policies.

use jitgc_nand::BlockId;
use jitgc_sim::{SimRng, SimTime};

/// A snapshot of one candidate block's state, handed to a
/// [`VictimSelector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// The block's id.
    pub id: BlockId,
    /// Pages currently valid (these must be migrated if chosen).
    pub valid: u32,
    /// Pages currently invalid (this is the reclaimable space).
    pub invalid: u32,
    /// Pages per block (so selectors can normalize).
    pub pages: u32,
    /// Erase cycles endured so far.
    pub erase_count: u64,
    /// When the block was last programmed (for age-based policies).
    pub last_write: SimTime,
    /// How many of the valid pages appear on the current SIP list — i.e.
    /// are expected to be invalidated shortly by incoming flushes.
    pub sip_valid: u32,
}

/// Strategy for choosing which block garbage collection erases next.
///
/// Implementations choose among `candidates` (blocks that are neither free
/// nor currently open for writes). Returning `None` means "no candidate is
/// worth collecting" and is treated as *no reclaimable space* by foreground
/// GC, so selectors should only do that for an empty candidate list or a
/// list with nothing reclaimable.
///
/// Determinism contract: given the same candidate sequence, the same choice
/// must be returned ([`RandomSelector`] owns its seeded RNG for this
/// reason).
pub trait VictimSelector: std::fmt::Debug + Send {
    /// A short human-readable policy name (for reports).
    fn name(&self) -> &'static str;

    /// Picks a victim from `candidates`, or `None` when nothing is worth
    /// collecting.
    fn select(
        &mut self,
        candidates: &mut dyn Iterator<Item = BlockInfo>,
        now: SimTime,
    ) -> Option<BlockId>;

    /// `true` when this selector's choice depends only on the candidates'
    /// valid-page counts (lower is better) with deterministic tie-breaks.
    ///
    /// The FTL maintains candidates bucketed by valid count; a frontier
    /// selector is handed just the lowest reclaimable bucket — an O(1)
    /// lookup instead of a full candidate iteration — and must pick the
    /// same block it would pick from the full sequence. Selectors whose
    /// score involves anything else (age, wear, randomness) must leave
    /// this `false`.
    fn uses_min_valid_frontier(&self) -> bool {
        false
    }
}

/// Greedy selection: the block with the fewest valid pages (cheapest to
/// migrate, most space reclaimed). Ties break toward the lower block id so
/// runs are reproducible.
///
/// This is the de-facto default in production FTLs and the baseline the
/// paper's victim policy modifies.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySelector;

impl VictimSelector for GreedySelector {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn select(
        &mut self,
        candidates: &mut dyn Iterator<Item = BlockInfo>,
        _now: SimTime,
    ) -> Option<BlockId> {
        candidates
            .filter(|c| c.invalid > 0)
            .min_by_key(|c| (c.valid, c.id))
            .map(|c| c.id)
    }

    fn uses_min_valid_frontier(&self) -> bool {
        true
    }
}

/// Cost-benefit selection (Kawaguchi et al.): maximizes
/// `age × invalid / (2 × valid)`, preferring old blocks with little live
/// data. Falls back to greedy behaviour for brand-new blocks (age 0 counts
/// as 1 µs).
#[derive(Debug, Clone, Copy, Default)]
pub struct CostBenefitSelector;

impl VictimSelector for CostBenefitSelector {
    fn name(&self) -> &'static str {
        "cost-benefit"
    }

    fn select(
        &mut self,
        candidates: &mut dyn Iterator<Item = BlockInfo>,
        now: SimTime,
    ) -> Option<BlockId> {
        candidates
            .filter(|c| c.invalid > 0)
            .max_by_key(|c| {
                let age_us = now.saturating_since(c.last_write).as_micros().max(1);
                // score = age × invalid / (2 valid + 1); integer math with
                // a scale factor to keep precision. u128 prevents overflow.
                let score = u128::from(age_us) * u128::from(c.invalid) * 1_000
                    / (2 * u128::from(c.valid) + 1);
                // Tie-break toward lower ids deterministically: invert id.
                (score, std::cmp::Reverse(c.id))
            })
            .map(|c| c.id)
    }
}

/// FIFO selection: the least-recently-written block with any invalid page.
/// Cheap and wear-friendly, but migration-heavy under skewed workloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoSelector;

impl VictimSelector for FifoSelector {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select(
        &mut self,
        candidates: &mut dyn Iterator<Item = BlockInfo>,
        _now: SimTime,
    ) -> Option<BlockId> {
        candidates
            .filter(|c| c.invalid > 0)
            .min_by_key(|c| (c.last_write, c.id))
            .map(|c| c.id)
    }
}

/// Uniform-random selection among reclaimable candidates. A worst-case
/// baseline for ablation studies; deterministic per seed.
#[derive(Debug)]
pub struct RandomSelector {
    rng: SimRng,
}

impl RandomSelector {
    /// Creates a random selector with its own seeded stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomSelector {
            rng: SimRng::seed(seed),
        }
    }
}

impl VictimSelector for RandomSelector {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(
        &mut self,
        candidates: &mut dyn Iterator<Item = BlockInfo>,
        _now: SimTime,
    ) -> Option<BlockId> {
        let pool: Vec<BlockId> = candidates.filter(|c| c.invalid > 0).map(|c| c.id).collect();
        if pool.is_empty() {
            None
        } else {
            let idx = self.rng.range_u64(0, pool.len() as u64) as usize;
            Some(pool[idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info3(id: u32, valid: u32, invalid: u32) -> BlockInfo {
        info(id, valid, invalid, 0)
    }

    fn info(id: u32, valid: u32, invalid: u32, last_write_s: u64) -> BlockInfo {
        BlockInfo {
            id: BlockId(id),
            valid,
            invalid,
            pages: valid + invalid,
            erase_count: 0,
            last_write: SimTime::from_secs(last_write_s),
            sip_valid: 0,
        }
    }

    #[test]
    fn greedy_picks_fewest_valid() {
        let mut s = GreedySelector;
        let picked = s.select(
            &mut [info3(0, 5, 3), info3(1, 2, 6), info3(2, 7, 1)].into_iter(),
            SimTime::from_secs(100),
        );
        assert_eq!(picked, Some(BlockId(1)));
    }

    #[test]
    fn greedy_skips_fully_valid_blocks() {
        let mut s = GreedySelector;
        let picked = s.select(
            &mut [info3(0, 8, 0), info3(1, 8, 0)].into_iter(),
            SimTime::ZERO,
        );
        assert_eq!(picked, None);
    }

    #[test]
    fn greedy_ties_break_low_id() {
        let mut s = GreedySelector;
        let picked = s.select(
            &mut [info3(3, 2, 6), info3(1, 2, 6)].into_iter(),
            SimTime::ZERO,
        );
        assert_eq!(picked, Some(BlockId(1)));
    }

    #[test]
    fn cost_benefit_prefers_old_blocks() {
        let mut s = CostBenefitSelector;
        // Same valid/invalid ratio; the older block should win.
        let picked = s.select(
            &mut [info(0, 4, 4, 90), info(1, 4, 4, 10)].into_iter(),
            SimTime::from_secs(100),
        );
        assert_eq!(picked, Some(BlockId(1)));
    }

    #[test]
    fn cost_benefit_prefers_emptier_blocks_at_equal_age() {
        let mut s = CostBenefitSelector;
        let picked = s.select(
            &mut [info(0, 6, 2, 50), info(1, 2, 6, 50)].into_iter(),
            SimTime::from_secs(100),
        );
        assert_eq!(picked, Some(BlockId(1)));
    }

    #[test]
    fn fifo_picks_oldest_write() {
        let mut s = FifoSelector;
        let picked = s.select(
            &mut [info(0, 4, 4, 30), info(1, 4, 4, 10), info(2, 4, 4, 20)].into_iter(),
            SimTime::from_secs(100),
        );
        assert_eq!(picked, Some(BlockId(1)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let candidates = [info3(0, 1, 7), info3(1, 1, 7), info3(2, 1, 7)];
        let mut a = RandomSelector::new(42);
        let mut b = RandomSelector::new(42);
        for _ in 0..10 {
            assert_eq!(
                a.select(&mut candidates.into_iter(), SimTime::ZERO),
                b.select(&mut candidates.into_iter(), SimTime::ZERO)
            );
        }
    }

    #[test]
    fn random_skips_fully_valid() {
        let mut s = RandomSelector::new(1);
        assert_eq!(
            s.select(&mut [info3(0, 8, 0)].into_iter(), SimTime::ZERO),
            None
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut g = GreedySelector;
        let mut cb = CostBenefitSelector;
        let mut f = FifoSelector;
        let mut r = RandomSelector::new(0);
        assert_eq!(g.select(&mut std::iter::empty(), SimTime::ZERO), None);
        assert_eq!(cb.select(&mut std::iter::empty(), SimTime::ZERO), None);
        assert_eq!(f.select(&mut std::iter::empty(), SimTime::ZERO), None);
        assert_eq!(r.select(&mut std::iter::empty(), SimTime::ZERO), None);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            GreedySelector.name(),
            CostBenefitSelector.name(),
            FifoSelector.name(),
            RandomSelector::new(0).name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
