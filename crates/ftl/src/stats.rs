//! FTL-level statistics.

use jitgc_sim::SimDuration;

/// Cumulative counters for one [`Ftl`](crate::Ftl) instance.
///
/// The headline metric is [`waf`](FtlStats::waf): the Write Amplification
/// Factor, NAND page programs divided by host page writes — the paper's
/// lifetime proxy (Fig. 2(b), Fig. 7(b)). The SIP counters feed Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FtlStats {
    /// Pages written by the host (flushes + direct writes).
    pub host_pages_written: u64,
    /// Pages read by the host.
    pub host_pages_read: u64,
    /// TRIM commands processed.
    pub trims: u64,
    /// Pages migrated by garbage collection (foreground + background).
    pub gc_pages_migrated: u64,
    /// Foreground GC episodes (a host write had to wait for reclamation).
    pub fgc_invocations: u64,
    /// Blocks erased by foreground GC.
    pub fgc_blocks: u64,
    /// Time consumed by foreground GC (charged to host writes).
    pub fgc_time: SimDuration,
    /// Background GC invocations that collected at least one block.
    pub bgc_invocations: u64,
    /// Blocks erased by background GC.
    pub bgc_blocks: u64,
    /// Time consumed by background GC (hidden in idle periods).
    pub bgc_time: SimDuration,
    /// Victim selections performed while a SIP list was installed.
    pub sip_eligible_selections: u64,
    /// Selections where the SIP filter changed the outcome — the block the
    /// base policy would have picked was avoided because too much of its
    /// valid data was about to be invalidated (Table 3's numerator).
    pub sip_filtered_selections: u64,
    /// Host pages routed to the hot stream (0 unless hot/cold stream
    /// separation is enabled).
    pub hot_stream_pages: u64,
    /// Pages migrated by static wear leveling.
    pub wear_level_migrations: u64,
    /// Blocks erased by static wear leveling.
    pub wear_level_blocks: u64,
    /// Blocks retired as bad (endurance limit exceeded or erase failed).
    pub retired_blocks: u64,
    /// Page programs re-issued to another page after an injected program
    /// failure (host and GC writes combined).
    pub program_retries: u64,
    /// GC migrations whose source read came back uncorrectable; the page
    /// was relocated from the raw (error-laden) data anyway.
    pub gc_read_failures: u64,
    /// Host reads that came back uncorrectable — data loss unless a
    /// redundant copy exists at a higher layer (the array's mirror).
    pub host_read_failures: u64,
}

impl FtlStats {
    /// The Write Amplification Factor given the device's total program
    /// count; `None` until the host has written at least one page.
    ///
    /// WAF = (all NAND programs) ÷ (host page writes). GC migrations and
    /// wear-leveling copies inflate the numerator; 1.0 is the ideal.
    #[must_use]
    pub fn waf(&self, nand_programs: u64) -> Option<f64> {
        (self.host_pages_written > 0).then(|| nand_programs as f64 / self.host_pages_written as f64)
    }

    /// Fraction of victim selections the SIP filter redirected, as reported
    /// in the paper's Table 3; `None` until a selection has happened with a
    /// SIP list installed.
    #[must_use]
    pub fn sip_filtered_fraction(&self) -> Option<f64> {
        (self.sip_eligible_selections > 0)
            .then(|| self.sip_filtered_selections as f64 / self.sip_eligible_selections as f64)
    }

    /// Total blocks erased by GC (foreground + background).
    #[must_use]
    pub fn gc_blocks(&self) -> u64 {
        self.fgc_blocks + self.bgc_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_requires_host_writes() {
        let s = FtlStats::default();
        assert_eq!(s.waf(100), None);
        let s = FtlStats {
            host_pages_written: 50,
            ..FtlStats::default()
        };
        assert_eq!(s.waf(100), Some(2.0));
    }

    #[test]
    fn sip_fraction() {
        let s = FtlStats {
            sip_eligible_selections: 200,
            sip_filtered_selections: 30,
            ..FtlStats::default()
        };
        assert_eq!(s.sip_filtered_fraction(), Some(0.15));
        assert_eq!(FtlStats::default().sip_filtered_fraction(), None);
    }

    #[test]
    fn gc_blocks_sums() {
        let s = FtlStats {
            fgc_blocks: 3,
            bgc_blocks: 7,
            ..FtlStats::default()
        };
        assert_eq!(s.gc_blocks(), 10);
    }
}
