//! Incrementally maintained index of GC victim candidates.
//!
//! The FTL used to rebuild the full candidate list — every sealed block,
//! with its valid-page count — on **every** victim selection, an O(blocks)
//! scan plus a heap allocation on the hottest GC path. This index keeps
//! the same information up to date as a side effect of the events that
//! change it, so selection touches only the blocks that matter:
//!
//! * **seal** (an active block fills up and a fresh one is opened) —
//!   [`VictimIndex::insert`], O(1);
//! * **invalidate** (a host overwrite or TRIM kills a page) —
//!   [`VictimIndex::on_invalidate`] moves the block down one bucket, O(1);
//! * **victory** (the block is chosen for collection, or taken by wear
//!   leveling) — [`VictimIndex::remove`], O(1).
//!
//! Blocks are held in *buckets* keyed by their current valid-page count.
//! Greedy selection — the production default — reduces to "first
//! non-empty bucket below `pages_per_block`", which is O(pages_per_block)
//! worst case and O(1) in practice, independent of device size. Policies
//! that need more context (cost-benefit, FIFO, random) iterate the tracked
//! set in block-id order via [`VictimIndex::iter_ids`], which reproduces
//! the exact candidate sequence of the old full scan — the selection they
//! make is byte-identical, it just skips free/active/retired blocks
//! without querying them.
//!
//! Membership invariant: a block is tracked **iff** it is a GC candidate —
//! sealed (hence full), not free, not retired, not any active write
//! target, and not the in-progress background victim. `Ftl` checks this
//! against a full device scan in debug builds on every selection.

use jitgc_nand::BlockId;

/// Sentinel in `valid_of` for blocks not currently tracked.
const UNTRACKED: u32 = u32::MAX;

/// Bucketed candidate index; see the [module docs](self).
#[derive(Debug, Clone)]
pub(crate) struct VictimIndex {
    /// `buckets[v]` holds every tracked block with exactly `v` valid
    /// pages, in arbitrary order (maintained by `swap_remove`).
    buckets: Vec<Vec<BlockId>>,
    /// Position of each tracked block inside its bucket.
    pos: Vec<u32>,
    /// Valid-page count of each tracked block, [`UNTRACKED`] otherwise.
    valid_of: Vec<u32>,
    /// Number of tracked blocks.
    tracked: usize,
}

impl VictimIndex {
    /// Creates an empty index for a device with `blocks` blocks of
    /// `pages_per_block` pages each.
    pub(crate) fn new(blocks: u32, pages_per_block: u32) -> Self {
        VictimIndex {
            buckets: vec![Vec::new(); pages_per_block as usize + 1],
            pos: vec![0; blocks as usize],
            valid_of: vec![UNTRACKED; blocks as usize],
            tracked: 0,
        }
    }

    /// Starts tracking a freshly sealed block with `valid` valid pages.
    ///
    /// # Panics
    ///
    /// Panics if the block is already tracked or `valid` exceeds the
    /// page count per block.
    pub(crate) fn insert(&mut self, block: BlockId, valid: u32) {
        let i = block.0 as usize;
        assert_eq!(
            self.valid_of[i], UNTRACKED,
            "block {block} inserted into the victim index twice"
        );
        assert!(
            (valid as usize) < self.buckets.len(),
            "valid count {valid} exceeds pages per block"
        );
        self.valid_of[i] = valid;
        self.pos[i] = self.buckets[valid as usize].len() as u32;
        self.buckets[valid as usize].push(block);
        self.tracked += 1;
    }

    /// Stops tracking `block` (it was chosen as a victim, or taken for
    /// wear leveling).
    ///
    /// # Panics
    ///
    /// Panics if the block is not tracked.
    pub(crate) fn remove(&mut self, block: BlockId) {
        let i = block.0 as usize;
        let valid = self.valid_of[i];
        assert_ne!(
            valid, UNTRACKED,
            "block {block} removed from the victim index but never tracked"
        );
        self.detach(block, valid);
        self.valid_of[i] = UNTRACKED;
        self.tracked -= 1;
    }

    /// Notes that one page of `block` was invalidated, moving it down a
    /// bucket. A no-op for untracked blocks (active blocks and the
    /// in-progress background victim take invalidations too).
    pub(crate) fn on_invalidate(&mut self, block: BlockId) {
        let i = block.0 as usize;
        let valid = self.valid_of[i];
        if valid == UNTRACKED {
            return;
        }
        debug_assert!(valid > 0, "invalidate on a block with no valid pages");
        self.detach(block, valid);
        let v = valid - 1;
        self.valid_of[i] = v;
        self.pos[i] = self.buckets[v as usize].len() as u32;
        self.buckets[v as usize].push(block);
    }

    /// Unlinks `block` from bucket `valid`, fixing up the displaced tail
    /// entry's position.
    fn detach(&mut self, block: BlockId, valid: u32) {
        let bucket = &mut self.buckets[valid as usize];
        let p = self.pos[block.0 as usize] as usize;
        debug_assert_eq!(bucket[p], block, "victim index position desynced");
        bucket.swap_remove(p);
        if let Some(&moved) = bucket.get(p) {
            self.pos[moved.0 as usize] = p as u32;
        }
    }

    /// `true` when `block` is currently tracked as a candidate.
    pub(crate) fn is_tracked(&self, block: BlockId) -> bool {
        self.valid_of[block.0 as usize] != UNTRACKED
    }

    /// Number of tracked candidate blocks.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.tracked
    }

    /// Number of pages per block (bucket `pages_per_block` holds the
    /// fully-valid blocks greedy selection never picks).
    pub(crate) fn pages_per_block(&self) -> u32 {
        (self.buckets.len() - 1) as u32
    }

    /// The tracked blocks holding exactly `valid` valid pages, in
    /// arbitrary order.
    pub(crate) fn bucket(&self, valid: u32) -> &[BlockId] {
        &self.buckets[valid as usize]
    }

    /// Iterates `(block, valid_count)` over all tracked blocks in
    /// ascending block-id order — the same candidate order a full device
    /// scan produces.
    pub(crate) fn iter_ids(&self) -> impl Iterator<Item = (BlockId, u32)> + '_ {
        self.valid_of
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != UNTRACKED)
            .map(|(i, &v)| (BlockId(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(index: &VictimIndex) -> Vec<(u32, u32)> {
        index.iter_ids().map(|(b, v)| (b.0, v)).collect()
    }

    #[test]
    fn insert_and_iterate_in_id_order() {
        let mut idx = VictimIndex::new(8, 4);
        idx.insert(BlockId(5), 2);
        idx.insert(BlockId(1), 4);
        idx.insert(BlockId(3), 0);
        assert_eq!(ids(&idx), vec![(1, 4), (3, 0), (5, 2)]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.pages_per_block(), 4);
    }

    #[test]
    fn buckets_hold_equal_valid_counts() {
        let mut idx = VictimIndex::new(8, 4);
        idx.insert(BlockId(0), 2);
        idx.insert(BlockId(4), 2);
        idx.insert(BlockId(2), 3);
        let mut b2: Vec<u32> = idx.bucket(2).iter().map(|b| b.0).collect();
        b2.sort_unstable();
        assert_eq!(b2, vec![0, 4]);
        assert_eq!(idx.bucket(3), &[BlockId(2)]);
        assert!(idx.bucket(0).is_empty());
    }

    #[test]
    fn invalidate_moves_down_one_bucket() {
        let mut idx = VictimIndex::new(4, 4);
        idx.insert(BlockId(1), 3);
        idx.on_invalidate(BlockId(1));
        idx.on_invalidate(BlockId(1));
        assert_eq!(ids(&idx), vec![(1, 1)]);
        assert_eq!(idx.bucket(1), &[BlockId(1)]);
        assert!(idx.bucket(3).is_empty());
    }

    #[test]
    fn invalidate_of_untracked_block_is_noop() {
        let mut idx = VictimIndex::new(4, 4);
        idx.on_invalidate(BlockId(2));
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn remove_untracks_and_fixes_positions() {
        let mut idx = VictimIndex::new(8, 4);
        // Three blocks in the same bucket so swap_remove relocates one.
        idx.insert(BlockId(0), 1);
        idx.insert(BlockId(1), 1);
        idx.insert(BlockId(2), 1);
        idx.remove(BlockId(0));
        assert!(!idx.is_tracked(BlockId(0)));
        assert_eq!(idx.len(), 2);
        // The survivors must still move buckets correctly.
        idx.on_invalidate(BlockId(2));
        idx.on_invalidate(BlockId(1));
        assert_eq!(ids(&idx), vec![(1, 0), (2, 0)]);
    }

    #[test]
    fn reinsert_after_remove_is_allowed() {
        let mut idx = VictimIndex::new(4, 4);
        idx.insert(BlockId(3), 2);
        idx.remove(BlockId(3));
        idx.insert(BlockId(3), 4);
        assert_eq!(ids(&idx), vec![(3, 4)]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_insert_panics() {
        let mut idx = VictimIndex::new(4, 4);
        idx.insert(BlockId(0), 1);
        idx.insert(BlockId(0), 2);
    }

    #[test]
    #[should_panic(expected = "never tracked")]
    fn remove_of_untracked_panics() {
        let mut idx = VictimIndex::new(4, 4);
        idx.remove(BlockId(0));
    }
}
