//! Error type for FTL operations.

use jitgc_nand::{Lpn, NandError};
use std::error::Error;
use std::fmt;

/// An FTL operation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The logical page is outside the host-visible address space.
    LpnOutOfRange {
        /// The offending logical page.
        lpn: Lpn,
        /// Size of the logical space.
        user_pages: u64,
    },
    /// The logical page has never been written (read of an unmapped LPN).
    LpnUnmapped {
        /// The offending logical page.
        lpn: Lpn,
    },
    /// Garbage collection cannot free any space: every reclaimable block is
    /// fully valid. With correctly sized over-provisioning this is
    /// unreachable; it indicates a misconfiguration (OP ≈ 0) or an FTL bug.
    NoReclaimableSpace,
    /// The underlying NAND device rejected an operation — always an FTL
    /// bug surfaced loudly rather than swallowed.
    Nand(NandError),
    /// The device is in read-only degraded mode: enough blocks have been
    /// retired that writes can no longer be sustained. Reads keep working.
    ReadOnly,
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LpnOutOfRange { lpn, user_pages } => {
                write!(
                    f,
                    "logical page {lpn} outside user space of {user_pages} pages"
                )
            }
            FtlError::LpnUnmapped { lpn } => write!(f, "logical page {lpn} has never been written"),
            FtlError::NoReclaimableSpace => {
                write!(f, "garbage collection found no reclaimable block")
            }
            FtlError::Nand(e) => write!(f, "nand device error: {e}"),
            FtlError::ReadOnly => {
                write!(f, "device is in read-only degraded mode (end of life)")
            }
        }
    }
}

impl Error for FtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtlError::Nand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NandError> for FtlError {
    fn from(e: NandError) -> Self {
        FtlError::Nand(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitgc_nand::Ppn;

    #[test]
    fn display_variants() {
        assert!(FtlError::LpnOutOfRange {
            lpn: Lpn(9),
            user_pages: 4
        }
        .to_string()
        .contains("L9"));
        assert!(FtlError::LpnUnmapped { lpn: Lpn(3) }
            .to_string()
            .contains("never been written"));
        assert!(FtlError::NoReclaimableSpace
            .to_string()
            .contains("no reclaimable"));
        assert!(FtlError::ReadOnly.to_string().contains("read-only"));
    }

    #[test]
    fn nand_error_wraps_with_source() {
        let e = FtlError::from(NandError::ReadUnwrittenPage { ppn: Ppn(1) });
        assert!(e.to_string().contains("nand device error"));
        assert!(e.source().is_some());
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<FtlError>();
    }
}
