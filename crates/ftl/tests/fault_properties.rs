#![cfg(feature = "proptest")]

//! Property-based tests of the wear-fault injector: a disabled fault
//! model is perfectly inert, and an enabled one is a pure function of its
//! seed.

use jitgc_ftl::{Ftl, FtlConfig, FtlError, GreedySelector, Lpn};
use jitgc_nand::FaultConfig;
use jitgc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

const USER_PAGES: u64 = 64;

fn ftl_with(fault: Option<FaultConfig>, endurance: u64) -> Ftl {
    let mut builder = FtlConfig::builder()
        .user_pages(USER_PAGES)
        .op_permille(250)
        .pages_per_block(8)
        .gc_reserve_blocks(2)
        .endurance_limit(endurance);
    if let Some(fault) = fault {
        builder = builder.fault(fault);
    }
    Ftl::new(builder.build(), Box::new(GreedySelector))
}

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Trim(u64),
    Bgc(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..USER_PAGES).prop_map(Op::Write),
        1 => (0..USER_PAGES).prop_map(Op::Trim),
        1 => (1..50u64).prop_map(Op::Bgc),
    ]
}

/// Drives one op sequence, tolerating the graceful-EOL error paths, and
/// returns a full observable fingerprint of the run.
fn drive(ftl: &mut Ftl, ops: &[Op]) -> (String, String, Vec<String>, u64, bool) {
    let mut t = 0u64;
    for op in ops {
        t += 1;
        let now = SimTime::from_millis(t);
        match op {
            Op::Write(lpn) => match ftl.host_write(Lpn(*lpn), now) {
                Ok(_) | Err(FtlError::ReadOnly) => {}
                Err(e) => panic!("unexpected write error: {e}"),
            },
            Op::Trim(lpn) => match ftl.trim(Lpn(*lpn), now) {
                Ok(_) | Err(FtlError::ReadOnly) => {}
                Err(e) => panic!("unexpected trim error: {e}"),
            },
            Op::Bgc(ms) => {
                ftl.background_collect(now, SimDuration::from_millis(*ms), None);
            }
        }
    }
    (
        format!("{:?}", ftl.stats()),
        format!("{:?}", ftl.device().stats()),
        ftl.degrade_events()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect(),
        ftl.retired_pages(),
        ftl.read_only(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A fault model whose every rate is zero must not perturb anything:
    /// the run is indistinguishable from one with no fault model at all,
    /// op for op and counter for counter.
    #[test]
    fn zero_rate_fault_model_is_inert(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        seed in 0..u64::MAX,
    ) {
        let mut plain = ftl_with(None, 20);
        let mut zeroed = ftl_with(
            Some(FaultConfig { seed, ..FaultConfig::default() }),
            20,
        );
        prop_assert_eq!(drive(&mut plain, &ops), drive(&mut zeroed, &ops));
    }

    /// The failure timeline is a pure function of the fault seed: same
    /// seed ⇒ identical counters, degrade events, and end state; the run
    /// must survive (no panic) whatever the rates are.
    #[test]
    fn fault_timeline_is_a_function_of_the_seed(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        seed in 0..u64::MAX,
        program_permille in 0..200u32,
        erase_permille in 0..200u32,
        read_permille in 0..200u32,
    ) {
        let fault = FaultConfig {
            seed,
            program_rate: f64::from(program_permille) / 1_000.0,
            erase_rate: f64::from(erase_permille) / 1_000.0,
            read_rate: f64::from(read_permille) / 1_000.0,
            wear_scale: 10,
        };
        let mut a = ftl_with(Some(fault), 8);
        let mut b = ftl_with(Some(fault), 8);
        prop_assert_eq!(drive(&mut a, &ops), drive(&mut b, &ops));
    }
}
