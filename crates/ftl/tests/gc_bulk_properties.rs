#![cfg(feature = "proptest")]

//! Property-based version of `gc_bulk_equivalence`: for *arbitrary* op
//! streams and fault-rate corners, the bulk GC migration path is
//! observationally identical to the per-page migrate loop — same op
//! results, same stats, same retirements, same degrade-event timeline.

use jitgc_ftl::{Ftl, FtlConfig, FtlError, GreedySelector, Lpn};
use jitgc_nand::FaultConfig;
use jitgc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

const USER_PAGES: u64 = 64;

fn ftl_with(fault: Option<FaultConfig>, endurance: u64, bulk: bool) -> Ftl {
    let mut builder = FtlConfig::builder()
        .user_pages(USER_PAGES)
        .op_permille(250)
        .pages_per_block(8)
        .gc_reserve_blocks(2)
        .endurance_limit(endurance);
    if let Some(fault) = fault {
        builder = builder.fault(fault);
    }
    let mut ftl = Ftl::new(builder.build(), Box::new(GreedySelector));
    ftl.set_bulk_gc(bulk);
    ftl
}

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Trim(u64),
    Bgc(u64),
    WearLevel,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..USER_PAGES).prop_map(Op::Write),
        1 => (0..USER_PAGES).prop_map(Op::Trim),
        1 => (1..50u64).prop_map(Op::Bgc),
        1 => Just(Op::WearLevel),
    ]
}

/// Drives one op sequence, tolerating the graceful-EOL error paths, and
/// returns the full observable trace.
fn drive(ftl: &mut Ftl, ops: &[Op]) -> Vec<String> {
    let mut t = 0u64;
    let mut trace = Vec::with_capacity(ops.len() + 8);
    for op in ops {
        t += 1;
        let now = SimTime::from_millis(t);
        let entry = match op {
            Op::Write(lpn) => match ftl.host_write(Lpn(*lpn), now) {
                Ok(o) => format!("{o:?}"),
                Err(FtlError::ReadOnly) => "read-only".into(),
                Err(e) => panic!("unexpected write error: {e}"),
            },
            Op::Trim(lpn) => format!("{:?}", ftl.trim(Lpn(*lpn), now)),
            Op::Bgc(ms) => format!(
                "{:?}",
                ftl.background_collect(now, SimDuration::from_millis(*ms), None)
            ),
            Op::WearLevel => format!("{:?}", ftl.wear_level(now)),
        };
        trace.push(entry);
    }
    trace.push(format!("{:?}", ftl.stats()));
    trace.push(format!("{:?}", ftl.device().stats()));
    trace.push(format!("{:?}", ftl.degrade_events()));
    trace.push(format!(
        "retired={} read_only={}",
        ftl.retired_pages(),
        ftl.read_only()
    ));
    for lpn in 0..USER_PAGES {
        trace.push(format!("{:?}", ftl.lookup(Lpn(lpn))));
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bulk and looped GC migration are indistinguishable under any op
    /// stream and any fault configuration, all the way to end of life.
    #[test]
    fn bulk_migration_is_equivalent_to_looped(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        seed in 0..u64::MAX,
        program_permille in 0..200u32,
        erase_permille in 0..200u32,
        read_permille in 0..200u32,
    ) {
        let fault = FaultConfig {
            seed,
            program_rate: f64::from(program_permille) / 1_000.0,
            erase_rate: f64::from(erase_permille) / 1_000.0,
            read_rate: f64::from(read_permille) / 1_000.0,
            wear_scale: 10,
        };
        let mut bulk = ftl_with(Some(fault), 8, true);
        let mut looped = ftl_with(Some(fault), 8, false);
        prop_assert_eq!(drive(&mut bulk, &ops), drive(&mut looped, &ops));
    }
}
