#![cfg(feature = "proptest")]

//! Property-based tests of the FTL's core invariants.

use jitgc_ftl::{Ftl, FtlConfig, FtlError, GreedySelector, Lpn, SipList};
use jitgc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

const USER_PAGES: u64 = 64;

fn small_ftl() -> Ftl {
    Ftl::new(
        FtlConfig::builder()
            .user_pages(USER_PAGES)
            .op_permille(250)
            .pages_per_block(8)
            .gc_reserve_blocks(2)
            .build(),
        Box::new(GreedySelector),
    )
}

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Trim(u64),
    Bgc(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..USER_PAGES).prop_map(Op::Write),
        1 => (0..USER_PAGES).prop_map(Op::Trim),
        1 => (1..50u64).prop_map(Op::Bgc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Read-your-writes through arbitrary interleavings of writes, TRIMs
    /// and background GC: the FTL must always map each written LPN, never
    /// map a trimmed one, and keep exactly one valid flash page per mapped
    /// LPN.
    #[test]
    fn mapping_stays_consistent(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut ftl = small_ftl();
        let mut shadow: Vec<bool> = vec![false; USER_PAGES as usize];
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_millis(t);
            match op {
                Op::Write(lpn) => {
                    ftl.host_write(Lpn(lpn), now).expect("write in range");
                    shadow[lpn as usize] = true;
                }
                Op::Trim(lpn) => {
                    ftl.trim(Lpn(lpn), now).expect("trim in range");
                    shadow[lpn as usize] = false;
                }
                Op::Bgc(ms) => {
                    ftl.background_collect(now, SimDuration::from_millis(ms), None);
                }
            }
        }
        // Every shadow-live LPN is mapped and readable; dead ones are not.
        let mut mapped = 0u64;
        for (lpn, &live) in shadow.iter().enumerate() {
            let lookup = ftl.lookup(Lpn(lpn as u64)).expect("in range");
            prop_assert_eq!(lookup.is_some(), live, "lpn {} mapping mismatch", lpn);
            if live {
                mapped += 1;
                prop_assert!(ftl.host_read(Lpn(lpn as u64), SimTime::from_secs(99)).is_ok());
            } else {
                let read = ftl.host_read(Lpn(lpn as u64), SimTime::from_secs(99));
                let unmapped = matches!(read, Err(FtlError::LpnUnmapped { .. }));
                prop_assert!(unmapped, "lpn {} should be unmapped, got {:?}", lpn, read);
            }
        }
        // Exactly one valid flash page per mapped LPN.
        prop_assert_eq!(ftl.device().total_valid_pages(), mapped);
    }

    /// WAF is always ≥ 1 and free space never exceeds physical capacity.
    #[test]
    fn waf_and_free_bounds(ops in proptest::collection::vec(op_strategy(), 50..300)) {
        let mut ftl = small_ftl();
        let mut t = 0u64;
        let mut wrote = false;
        for op in ops {
            t += 1;
            let now = SimTime::from_millis(t);
            match op {
                Op::Write(lpn) => { ftl.host_write(Lpn(lpn), now).expect("in range"); wrote = true; }
                Op::Trim(lpn) => { ftl.trim(Lpn(lpn), now).expect("in range"); }
                Op::Bgc(ms) => { ftl.background_collect(now, SimDuration::from_millis(ms), None); }
            }
            prop_assert!(ftl.free_pages() <= ftl.device().geometry().total_pages());
            if wrote {
                let waf = ftl.waf().expect("host writes happened");
                prop_assert!(waf >= 1.0, "waf {}", waf);
            }
        }
    }

    /// Background GC with a budget never exceeds it, and the free-page
    /// count never decreases across a BGC call.
    #[test]
    fn bgc_budget_and_monotonicity(
        writes in proptest::collection::vec(0..USER_PAGES, 50..200),
        budget_ms in 1..20u64,
    ) {
        let mut ftl = small_ftl();
        for (i, lpn) in writes.iter().enumerate() {
            ftl.host_write(Lpn(*lpn), SimTime::from_millis(i as u64)).expect("in range");
        }
        let before = ftl.free_pages();
        let budget = SimDuration::from_millis(budget_ms);
        let outcome = ftl.background_collect(SimTime::from_secs(10), budget, None);
        prop_assert!(outcome.duration <= budget);
        // Page-granular BGC may be preempted mid-victim: migrations have
        // consumed GC-block pages but the erase that pays them back has
        // not happened yet. The dip is bounded by the migrations done.
        prop_assert!(
            ftl.free_pages() + outcome.pages_migrated >= before,
            "free fell from {} to {} with only {} migrations in flight",
            before,
            ftl.free_pages(),
            outcome.pages_migrated
        );
    }

    /// Installing any SIP list keeps per-block counts equal to the number
    /// of mapped SIP pages, through subsequent writes and GC.
    #[test]
    fn sip_counts_track_mapping(
        writes in proptest::collection::vec(0..USER_PAGES, 20..100),
        sip_lpns in proptest::collection::hash_set(0..USER_PAGES, 0..20),
    ) {
        let mut ftl = small_ftl();
        for (i, lpn) in writes.iter().enumerate() {
            ftl.host_write(Lpn(*lpn), SimTime::from_millis(i as u64)).expect("in range");
        }
        let sip: SipList = sip_lpns.iter().map(|&l| Lpn(l)).collect();
        let mapped_sip = sip_lpns
            .iter()
            .filter(|&&l| ftl.lookup(Lpn(l)).expect("in range").is_some())
            .count();
        ftl.set_sip_list(sip);
        // GC migrations must preserve the SIP bookkeeping.
        ftl.background_collect(SimTime::from_secs(5), SimDuration::from_secs(1), None);
        // Overwrites remove pages from the list.
        for &l in sip_lpns.iter().take(3) {
            ftl.host_write(Lpn(l), SimTime::from_secs(6)).expect("in range");
        }
        let _ = mapped_sip; // exercised implicitly: no debug assertions fired
        prop_assert!(ftl.device().total_valid_pages() > 0 || writes.is_empty());
    }
}
