//! The bulk GC migration path (one vectorized `copy_pages` call per
//! victim) must be observationally identical to the per-page migrate loop
//! it replaced — op for op, counter for counter, fault draw for fault
//! draw. These tests drive the same deterministic op stream through a
//! bulk FTL and a looped FTL (`set_bulk_gc(false)`) with wear-dependent
//! fault injection active, and require the full observable trace to
//! match: every op result, final stats, device stats, the degrade-event
//! timeline, retirements, and the complete logical-to-physical mapping.
//!
//! (Debug builds additionally replay *every* bulk collection against the
//! looped oracle inside `collect_block` itself; this suite checks the
//! same equivalence end to end through the public API, in release builds
//! too.)

use jitgc_ftl::{Ftl, FtlConfig, GreedySelector, Lpn};
use jitgc_nand::FaultConfig;
use jitgc_sim::{SimDuration, SimRng, SimTime};

const USER_PAGES: u64 = 64;

fn ftl_with(fault: Option<FaultConfig>, endurance: u64, bulk: bool) -> Ftl {
    let mut builder = FtlConfig::builder()
        .user_pages(USER_PAGES)
        .op_permille(250)
        .pages_per_block(8)
        .gc_reserve_blocks(2)
        .endurance_limit(endurance);
    if let Some(fault) = fault {
        builder = builder.fault(fault);
    }
    let mut ftl = Ftl::new(builder.build(), Box::new(GreedySelector));
    ftl.set_bulk_gc(bulk);
    ftl
}

/// Runs a seeded op mix (writes under GC pressure, trims, budgeted BGC,
/// wear-level sweeps) and returns the complete observable trace.
fn drive(ftl: &mut Ftl, seed: u64, steps: u64) -> Vec<String> {
    let mut rng = SimRng::seed(seed);
    let mut trace = Vec::with_capacity(steps as usize + 8);
    for t in 1..=steps {
        let now = SimTime::from_millis(t);
        let entry = match rng.range_u64(0, 12) {
            0 => format!("{:?}", ftl.trim(Lpn(rng.range_u64(0, USER_PAGES)), now)),
            1 => {
                let budget = SimDuration::from_millis(rng.range_u64(1, 50));
                format!("{:?}", ftl.background_collect(now, budget, None))
            }
            2 => format!("{:?}", ftl.wear_level(now)),
            _ => format!(
                "{:?}",
                ftl.host_write(Lpn(rng.range_u64(0, USER_PAGES)), now)
            ),
        };
        trace.push(entry);
    }
    trace.push(format!("{:?}", ftl.stats()));
    trace.push(format!("{:?}", ftl.device().stats()));
    trace.push(format!("{:?}", ftl.degrade_events()));
    trace.push(format!(
        "retired={} read_only={}",
        ftl.retired_pages(),
        ftl.read_only()
    ));
    for lpn in 0..USER_PAGES {
        trace.push(format!("{:?}", ftl.lookup(Lpn(lpn))));
    }
    trace
}

fn assert_equivalent(fault: Option<FaultConfig>, endurance: u64, seed: u64) {
    let mut bulk = ftl_with(fault, endurance, true);
    let mut looped = ftl_with(fault, endurance, false);
    let bulk_trace = drive(&mut bulk, seed, 400);
    let looped_trace = drive(&mut looped, seed, 400);
    for (i, (b, l)) in bulk_trace.iter().zip(&looped_trace).enumerate() {
        assert_eq!(
            b, l,
            "bulk and looped GC diverged at trace entry {i} (op seed {seed})"
        );
    }
    assert_eq!(bulk_trace.len(), looped_trace.len());
}

/// Fault-free device: the easy case, but it exercises the chunked
/// `copy_pages` resume protocol across GC-block boundaries.
#[test]
fn bulk_equals_looped_without_faults() {
    for seed in [1, 7, 42] {
        assert_equivalent(None, 1_000, seed);
    }
}

/// Active fault injection: read failures, program retries, and erase
/// retirements all land mid-migration, so the RNG stream position after
/// every victim is part of the identity — same seed, same retirements,
/// same degrade-event timeline on both paths.
#[test]
fn bulk_equals_looped_under_active_faults() {
    let fault = FaultConfig {
        seed: 9,
        program_rate: 0.08,
        erase_rate: 0.08,
        read_rate: 0.04,
        wear_scale: 10,
    };
    for seed in [3, 11, 29] {
        assert_equivalent(Some(fault), 8, seed);
    }
}

/// A tiny endurance budget drives both FTLs all the way to read-only:
/// the end-of-life trajectory (which blocks retire, when the pool
/// collapses) must be identical.
#[test]
fn bulk_equals_looped_through_end_of_life() {
    let fault = FaultConfig {
        seed: 5,
        program_rate: 0.15,
        erase_rate: 0.15,
        read_rate: 0.05,
        wear_scale: 6,
    };
    for seed in [2, 13] {
        assert_equivalent(Some(fault), 4, seed);
    }
}
